"""The placement engine: fused serving rounds over live tenant lanes.

One *engine thread* owns every lane (agents, HSS state, queues) and
advances them in rounds, exactly like the lockstep tick of
:func:`repro.sim.lanes.run_lanes`:

1. :meth:`PlacementEngine.place_begin` runs each queued query's
   pre-inference half (:meth:`~repro.core.agent.SibylAgent.place_begin`:
   feature extraction, replay insertion, ε-greedy draw, action-memo
   lookup) and collects the observations that actually need inference;
2. :meth:`PlacementEngine.place_commit` batches those observations per
   architecture group into **one fused forward** through the stacked
   per-tenant weights, scatters the greedy actions back, serves each
   request closed-loop, and resolves the waiting responses.

Connection handler threads never touch a lane: they post jobs to the
engine's inbox and wait.  Training runs *off the request path*: a
tenant whose feedback left a training event pending
(``external_training``) is **held** — not served — while trainer
threads commit the event (fused across tenants whose events coincide,
via :func:`repro.sim.lanes.fused_train_event`); the hold is what keeps
each tenant's operation order, and therefore its placements, losses,
and weights, bit-identical to a serial offline
:class:`~repro.core.agent.SibylAgent` replay of the same queries.

Checkpoint hot-reload swaps in a *fresh* agent (old one untouched until
the load succeeds), and ``weights_version`` re-syncs the lane stacks —
in-flight and queued requests are never dropped, they simply commit
against whichever weights are installed when their round runs.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import span
from ..rl.c51 import C51LaneStack, C51Network
from ..rl.dqn import DQNLaneStack
from ..rl.optim import fusion_signature
from ..sim.lanes import fused_train_event, group_signature
from .knobs import resolve_serve_batch, resolve_serve_train, resolve_serve_workers
from .lane import TenantLane, open_lane
from .protocol import (
    ERR_BAD_REQUEST,
    ERR_CHECKPOINT_FAILED,
    ERR_INTERNAL,
    ERR_RELOAD_FAILED,
    ERR_SHUTTING_DOWN,
    ERR_TENANT_EXISTS,
    ERR_UNKNOWN_TENANT,
    Query,
    error_frame,
    ok_frame,
)

__all__ = ["Job", "PlacementEngine"]

logger = logging.getLogger("repro.serve")


@dataclass
class Job:
    """One submitted query plus the event its submitter waits on.

    ``t_submit``/``t_begin`` are ``time.perf_counter()`` stamps taken
    at submission and at the start of the job's serving round; the
    difference is the queue wait the ``place`` response reports.
    """

    query: Query
    done: threading.Event = field(default_factory=threading.Event)
    response: Optional[Dict[str, Any]] = None
    t_submit: float = 0.0
    t_begin: float = 0.0

    def resolve(self, response: Dict[str, Any]) -> None:
        """Install the response and wake the waiting submitter."""
        self.response = response
        self.done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until resolved; False on timeout."""
        return self.done.wait(timeout)


class _ServeGroup:
    """Tenant lanes sharing one architecture → one fused stack.

    The serving twin of :class:`repro.sim.lanes._LaneGroup`: a zeros
    observation buffer whose stale rows are fed through the fused
    forward and discarded, plus per-lane ``weights_version`` counters
    so a training commit or checkpoint reload re-syncs exactly the
    rewritten slice before the next forward.
    """

    def __init__(self, lanes: List[TenantLane]) -> None:
        self.lanes = lanes
        nets = [lane.agent.inference_net for lane in lanes]
        if isinstance(nets[0], C51Network):
            self.stack = C51LaneStack(nets)
        else:
            self.stack = DQNLaneStack(nets)
        self.obs = np.zeros((len(lanes), self.stack.in_features))
        self.weights_seen = [lane.agent.weights_version for lane in lanes]
        self.pending: List[Tuple[Job, int]] = []

    def resync(self) -> None:
        """Refresh stack slices of lanes whose weights changed."""
        for row, lane in enumerate(self.lanes):
            version = lane.agent.weights_version
            if version != self.weights_seen[row]:
                self.weights_seen[row] = version
                self.stack.refresh(row)


class PlacementEngine:
    """Single-threaded lane owner behind a thread-safe inbox.

    ``submit`` (any thread) enqueues a validated query and returns the
    :class:`Job` to wait on; everything else happens on the engine
    thread, with training events committed on ``workers`` trainer
    threads while the affected lanes are held.  Constructor arguments
    default to the ``SIBYL_SERVE_*`` environment knobs.
    """

    def __init__(
        self,
        batch: Optional[int] = None,
        workers: Optional[int] = None,
        train_mode: Optional[str] = None,
    ) -> None:
        self.batch = resolve_serve_batch() if batch is None else max(1, batch)
        self.train_mode = resolve_serve_train() if train_mode is None else train_mode
        n_workers = resolve_serve_workers() if workers is None else max(1, workers)
        self.lanes: Dict[str, TenantLane] = {}
        self.counters: Dict[str, int] = {
            "served": 0,
            "errors": 0,
            "rounds": 0,
            "fused_forwards": 0,
            "fused_rows": 0,
            "max_fused_rows": 0,
            "train_events": 0,
            "fused_train_events": 0,
            "reloads": 0,
        }
        self.shutting_down = False
        #: Wall-clock instruments behind the ``metrics`` protocol op:
        #: request-phase histograms and trainer occupancy.  Always on —
        #: the serve layer is outside the determinism scope, and the
        #: introspection surface must not depend on ``SIBYL_OBS``.
        self.metrics = MetricsRegistry(enabled=True)
        self._t_start = time.perf_counter()
        #: Called (on the engine thread) once a ``shutdown`` op drains;
        #: the daemon uses it to stop the socket server.
        self.on_shutdown = None
        self.inbox: "queue.Queue" = queue.Queue()
        self._train_queue: "queue.Queue" = queue.Queue()
        self._drains: List[Job] = []
        self._groups: List[_ServeGroup] = []
        self._lane_group: Dict[str, Tuple[_ServeGroup, int]] = {}
        self._groups_stale = True
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="serve-engine", daemon=True
        )
        self._workers = [
            threading.Thread(
                target=self._trainer, name=f"serve-trainer-{i}", daemon=True
            )
            for i in range(n_workers)
        ]

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        """Start the engine and trainer threads."""
        self._thread.start()
        for worker in self._workers:
            worker.start()

    def stop(self, timeout: float = 5.0) -> None:
        """Stop all threads; pending jobs resolve ``shutting-down``."""
        self.shutting_down = True
        self._stop.set()
        self.inbox.put(("wake", None))
        for _ in self._workers:
            self._train_queue.put(None)
        if self._thread.is_alive():
            self._thread.join(timeout)
        for worker in self._workers:
            if worker.is_alive():
                worker.join(timeout)

    def submit(self, query: Query) -> Job:
        """Enqueue a validated query; returns the job to wait on."""
        job = Job(query)
        job.t_submit = time.perf_counter()
        self.inbox.put(("job", job))
        return job

    # ------------------------------------------------------------ main loop
    def _run(self) -> None:
        try:
            while not self._stop.is_set():
                try:
                    kind, payload = self.inbox.get(timeout=0.05)
                except queue.Empty:
                    continue
                self._dispatch(kind, payload)
                while True:
                    try:
                        kind, payload = self.inbox.get_nowait()
                    except queue.Empty:
                        break
                    self._dispatch(kind, payload)
                self._serve_ready()
                self._release_barriers()
        finally:
            self._flush_pending()

    def _dispatch(self, kind: str, payload) -> None:
        if kind == "trained":
            self._on_trained(payload)
        elif kind == "job":
            job = payload
            if job.query.op == "place":
                self._enqueue_place(job)
            else:
                self._control(job)
        # "wake" carries no payload; it only interrupts the inbox wait.

    def _enqueue_place(self, job: Job) -> None:
        if self.shutting_down:
            self._fail(job, ERR_SHUTTING_DOWN, "daemon is shutting down")
            return
        lane = self.lanes.get(job.query.tenant)
        if lane is None:
            self._fail(
                job, ERR_UNKNOWN_TENANT, f"no such tenant: {job.query.tenant!r}"
            )
            return
        lane.queue.append(job)

    def _fail(self, job: Job, code: str, message: str) -> None:
        self.counters["errors"] += 1
        job.resolve(error_frame(code, message, id=job.query.id))

    # -------------------------------------------------------------- serving
    def _serve_ready(self) -> None:
        """Serve rounds until no unheld lane has a queued query."""
        while True:
            jobs: List[Job] = []
            for lane in self.lanes.values():
                if lane.queue and not lane.held:
                    jobs.append(lane.queue.popleft())
                    if len(jobs) >= self.batch:
                        break
            if not jobs:
                return
            self._serve_round(jobs)

    def _serve_round(self, jobs: List[Job]) -> None:
        """One fused round: at most one query per lane.

        ``place_begin`` → ``place_commit`` run in unconditional
        sequence (the SBL-HOOK rule proves the pair balances); an
        exception anywhere unwinds through ``place_abort`` so no agent
        is left with an in-flight decision and every submitter gets a
        structured error instead of a hung socket.
        """
        self.counters["rounds"] += 1
        t_begin = time.perf_counter()
        for job in jobs:
            job.t_begin = t_begin
        try:
            with span("serve.round", cat="serve", jobs=len(jobs)):
                pending = self.place_begin(jobs)
                self.place_commit(jobs, pending)
        except Exception as exc:
            logger.warning("serving round failed: %s", exc, exc_info=True)
            self.place_abort(jobs)

    def place_begin(self, jobs: List[Job]) -> List[Tuple[Job, TenantLane, np.ndarray]]:
        """Pre-inference half of every job in the round.

        Returns the ``(job, lane, observation)`` triples that need the
        fused forward; the rest already hold a decided action
        (exploration draw or greedy-memo hit) inside their agent.
        """
        pending = []
        for job in jobs:
            lane = self.lanes[job.query.tenant]
            obs = lane.agent.place_begin(job.query.fields["request"])
            if obs is not None:
                pending.append((job, lane, obs))
        return pending

    def place_commit(
        self,
        jobs: List[Job],
        pending: List[Tuple[Job, TenantLane, np.ndarray]],
    ) -> None:
        """Fused forwards, then commit/serve/respond for every job."""
        actions: Dict[int, int] = {}
        if pending:
            self._ensure_groups()
            touched: List[_ServeGroup] = []
            for job, lane, obs in pending:
                group, row = self._lane_group[lane.name]
                group.obs[row] = obs
                if not group.pending:
                    touched.append(group)
                group.pending.append((job, row))
            for group in touched:
                group.resync()
                greedy = group.stack.best_actions(group.obs)
                rows = len(group.pending)
                self.counters["fused_forwards"] += 1
                self.counters["fused_rows"] += rows
                if rows > self.counters["max_fused_rows"]:
                    self.counters["max_fused_rows"] = rows
                for pending_job, row in group.pending:
                    actions[id(pending_job)] = int(greedy[row])
                group.pending.clear()
        to_train: List[TenantLane] = []
        queue_hist = self.metrics.histogram("serve_queue_ms")
        service_hist = self.metrics.histogram("serve_service_ms")
        now = time.perf_counter()
        for job in jobs:
            lane = self.lanes[job.query.tenant]
            action = lane.agent.place_commit(actions.get(id(job)))
            seq, result = lane.complete(job.query.fields["request"], action)
            self.counters["served"] += 1
            queue_ms = (job.t_begin - job.t_submit) * 1e3
            service_ms = (now - job.t_begin) * 1e3
            queue_hist.observe(queue_ms)
            service_hist.observe(service_ms)
            job.resolve(ok_frame({
                "op": "place",
                "tenant": lane.name,
                "seq": seq,
                "action": action,
                "device": result.device,
                "latency_s": result.latency_s,
                "eviction_time_s": result.eviction_time_s,
                "timing": {
                    "queue_ms": round(queue_ms, 4),
                    "service_ms": round(service_ms, 4),
                },
            }, id=job.query.id))
            if lane.agent.train_pending:
                lane.held = True
                lane.hold_started = now
                to_train.append(lane)
        if to_train:
            self._dispatch_training(to_train)

    def place_abort(self, jobs: List[Job]) -> None:
        """Unwind a failed round: clear in-flight state, fail the jobs."""
        for job in jobs:
            lane = self.lanes.get(job.query.tenant)
            if lane is not None and lane.agent.place_pending:
                lane.agent.place_abort()
            if not job.done.is_set():
                self._fail(job, ERR_INTERNAL, "placement round failed")

    # ------------------------------------------------------------- training
    def _dispatch_training(self, lanes: List[TenantLane]) -> None:
        """Hand pending training events to the trainer threads.

        Lanes whose events coincide *and* share a fusable signature are
        committed as one stacked event (:func:`fused_train_event`);
        each lane stays held until its commit lands.
        """
        buckets: Dict[tuple, List[str]] = {}
        for lane in lanes:
            agent = lane.agent
            signature = fusion_signature(agent.training_net.optimizer)
            if signature is None:
                key = ("solo", lane.name)
            else:
                hp = agent.hyperparams
                key = (
                    group_signature(agent),
                    hp.batch_size,
                    hp.batches_per_training,
                    signature,
                )
            buckets.setdefault(key, []).append(lane.name)
        for names in buckets.values():
            self._train_queue.put(tuple(names))

    def _trainer(self) -> None:
        busy = self.metrics.counter("trainer_busy_s")
        while True:
            names = self._train_queue.get()
            if names is None:
                return
            agents = [self.lanes[name].agent for name in names]
            t0 = time.perf_counter()
            try:
                with span("serve.train", cat="serve", lanes=len(names)):
                    if len(agents) == 1:
                        agents[0].train_commit()
                    else:
                        fused_train_event(agents)
            except Exception as exc:
                logger.warning(
                    "training event failed for %s: %s", names, exc,
                    exc_info=True,
                )
                for agent in agents:
                    if agent.train_pending:
                        agent.train_abort()
            busy.add(time.perf_counter() - t0)
            self.inbox.put(("trained", names))

    def _on_trained(self, names) -> None:
        self.counters["train_events"] += len(names)
        if len(names) > 1:
            self.counters["fused_train_events"] += 1
        # Held-lane accounting happens here and only here: one
        # ``serve_hold_ms`` observation per trained lane per event, so
        # the histogram count always equals the train_events counter.
        hold_hist = self.metrics.histogram("serve_hold_ms")
        now = time.perf_counter()
        for name in names:
            lane = self.lanes.get(name)
            if lane is None:
                continue
            hold_hist.observe((now - lane.hold_started) * 1e3)
            lane.held = False
            deferred, lane.deferred = lane.deferred, []
            for job in deferred:
                self._control(job)

    # ------------------------------------------------------------- controls
    def _control(self, job: Job) -> None:
        op = job.query.op
        if op == "ping":
            job.resolve(ok_frame({"op": "ping"}, id=job.query.id))
        elif op == "open":
            self._open(job)
        elif op in ("save", "reload"):
            self._checkpoint_op(job)
        elif op == "stats":
            self._stats(job)
        elif op == "metrics":
            self._metrics_op(job)
        else:  # drain / shutdown: quiescence barriers
            if op == "shutdown":
                self.shutting_down = True
            self._drains.append(job)

    def _open(self, job: Job) -> None:
        name = job.query.tenant
        if self.shutting_down:
            self._fail(job, ERR_SHUTTING_DOWN, "daemon is shutting down")
            return
        if name in self.lanes:
            self._fail(job, ERR_TENANT_EXISTS, f"tenant exists: {name!r}")
            return
        fields = job.query.fields
        try:
            lane = open_lane(
                name,
                seed=fields["seed"],
                config=fields["config"],
                head=fields["head"],
                capacity_pages=fields["capacity_pages"],
                hyperparams=fields["hyperparams"],
                train_mode=self.train_mode,
            )
        except (ValueError, TypeError) as exc:
            self._fail(job, ERR_BAD_REQUEST, str(exc))
            return
        self.lanes[name] = lane
        self._groups_stale = True
        job.resolve(ok_frame({
            "op": "open",
            "tenant": name,
            "n_devices": lane.hss.n_devices,
            "n_features": lane.agent.extractor.n_features,
            "train_mode": lane.train_mode,
            "weights_version": lane.agent.weights_version,
        }, id=job.query.id))

    def _checkpoint_op(self, job: Job) -> None:
        lane = self.lanes.get(job.query.tenant)
        if lane is None:
            self._fail(
                job, ERR_UNKNOWN_TENANT, f"no such tenant: {job.query.tenant!r}"
            )
            return
        if lane.held:
            # A trainer thread owns the agent right now; run the op the
            # moment the lane is released (still on the engine thread).
            lane.deferred.append(job)
            return
        path = job.query.fields["checkpoint"]
        if job.query.op == "save":
            try:
                lane.agent.save_checkpoint(path)
            except (OSError, RuntimeError) as exc:
                logger.warning("checkpoint save failed: %s", exc)
                self._fail(job, ERR_CHECKPOINT_FAILED, str(exc))
                return
            job.resolve(ok_frame({
                "op": "save",
                "tenant": lane.name,
                "checkpoint": path,
                "weights_version": lane.agent.weights_version,
            }, id=job.query.id))
        else:
            self._reload(job, lane, path)

    def _reload(self, job: Job, lane: TenantLane, path: str) -> None:
        """Hot-swap a freshly loaded agent; old one survives failures."""
        fresh = lane.fresh_agent()
        fresh.attach(lane.hss)
        try:
            fresh.load_checkpoint(path)
        except Exception as exc:
            logger.warning(
                "checkpoint reload failed for %r: %s", lane.name, exc
            )
            self._fail(job, ERR_RELOAD_FAILED, str(exc))
            return
        fresh.external_training = lane.train_mode == "async"
        lane.agent = fresh
        self._groups_stale = True
        self.counters["reloads"] += 1
        job.resolve(ok_frame({
            "op": "reload",
            "tenant": lane.name,
            "checkpoint": path,
            "weights_version": fresh.weights_version,
        }, id=job.query.id))

    def _stats(self, job: Job) -> None:
        job.resolve(ok_frame({
            "op": "stats",
            "train_mode": self.train_mode,
            "counters": dict(self.counters),
            "tenants": {
                name: lane.stats() for name, lane in self.lanes.items()
            },
        }, id=job.query.id))

    def _metrics_op(self, job: Job) -> None:
        """The ``metrics`` op: live counters + wall-clock breakdown.

        Supersets ``stats`` with the introspection surface: queue
        depth, held lanes, request-phase histograms (queue wait,
        service, training hold), and trainer occupancy — the fraction
        of the workers' wall time spent inside training commits.
        """
        uptime_s = time.perf_counter() - self._t_start
        busy_s = float(self.metrics.counter("trainer_busy_s").value)
        workers = len(self._workers)
        snapshot = self.metrics.snapshot()
        job.resolve(ok_frame({
            "op": "metrics",
            "train_mode": self.train_mode,
            "uptime_s": round(uptime_s, 6),
            "workers": workers,
            "counters": dict(self.counters),
            "queue_depth": sum(
                len(lane.queue) for lane in self.lanes.values()
            ),
            "held_lanes": sum(
                1 for lane in self.lanes.values() if lane.held
            ),
            "trainer_busy_s": round(busy_s, 6),
            "trainer_occupancy": round(
                busy_s / (uptime_s * workers), 6
            ) if uptime_s > 0 else 0.0,
            "timings": snapshot["histograms"],
            "tenants": {
                name: lane.stats() for name, lane in self.lanes.items()
            },
        }, id=job.query.id))

    # ------------------------------------------------------------- barriers
    def _release_barriers(self) -> None:
        """Resolve drain/shutdown once every lane is idle and unheld."""
        if not self._drains:
            return
        if any(lane.queue or lane.held for lane in self.lanes.values()):
            return
        drains, self._drains = self._drains, []
        shutdown = False
        for job in drains:
            if job.query.op == "shutdown":
                shutdown = True
            job.resolve(ok_frame({"op": job.query.op}, id=job.query.id))
        if shutdown:
            self._stop.set()
            for _ in self._workers:
                self._train_queue.put(None)
            callback = self.on_shutdown
            if callback is not None:
                callback()

    def _flush_pending(self) -> None:
        """Fail whatever is still queued when the engine stops."""
        leftovers: List[Job] = []
        for lane in self.lanes.values():
            leftovers.extend(lane.queue)
            lane.queue.clear()
            leftovers.extend(lane.deferred)
            lane.deferred.clear()
        leftovers.extend(self._drains)
        self._drains = []
        while True:
            try:
                kind, payload = self.inbox.get_nowait()
            except queue.Empty:
                break
            if kind == "job":
                leftovers.append(payload)
        for job in leftovers:
            if not job.done.is_set():
                self._fail(job, ERR_SHUTTING_DOWN, "daemon stopped")

    # --------------------------------------------------------------- groups
    def _ensure_groups(self) -> None:
        """Rebuild the fused-inference groups after membership changes."""
        if not self._groups_stale:
            return
        by_signature: Dict[tuple, List[TenantLane]] = {}
        for lane in self.lanes.values():
            by_signature.setdefault(
                group_signature(lane.agent), []
            ).append(lane)
        self._groups = [_ServeGroup(members) for members in by_signature.values()]
        self._lane_group = {}
        for group in self._groups:
            for row, lane in enumerate(group.lanes):
                self._lane_group[lane.name] = (group, row)
        self._groups_stale = False
