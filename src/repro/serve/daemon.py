"""Sibyl-as-a-service: the TCP placement daemon.

A :class:`PlacementDaemon` binds a ``ThreadingTCPServer`` whose
per-connection handler threads speak the newline-delimited-JSON
protocol (:mod:`repro.serve.protocol`), validate each frame, and post
jobs to the single :class:`~repro.serve.engine.PlacementEngine` thread
that owns all tenant state.  One connection serves one client loop:
frames answered in order, so a client's ``seq`` numbers prove zero
dropped or duplicated responses.

Fault containment is structural: a malformed frame is answered with a
structured error on the offending connection only; a client that
disconnects mid-request costs one WARNING log; a slow-reading client
blocks only its own handler thread; and the accept loop never sees any
of it (``handle_error`` logs instead of propagating).
"""

from __future__ import annotations

import logging
import socketserver
import threading
from typing import Optional, Tuple

from ..obs.tracer import flush_tracer, span
from .engine import PlacementEngine
from .knobs import resolve_serve_backlog, resolve_serve_port
from .protocol import (
    ERR_TIMEOUT,
    MAX_FRAME_BYTES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_frame,
    parse_query,
)

__all__ = ["PlacementDaemon"]

logger = logging.getLogger("repro.serve")


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: read frame, submit, write response."""

    def handle(self) -> None:
        """Serve frames until EOF, a fatal frame, or shutdown."""
        peer = "%s:%s" % self.client_address[:2]
        while True:
            try:
                line = self.rfile.readline(MAX_FRAME_BYTES + 2)
            except OSError as exc:
                logger.warning("%s: read failed: %s", peer, exc)
                return
            if not line:
                return  # clean EOF between frames
            if not line.endswith(b"\n"):
                # EOF mid-frame (truncated request) or a frame beyond
                # the size bound; either way the stream is unframed
                # from here, so answer once and drop the connection.
                logger.warning("%s: truncated or oversized frame", peer)
                self._send(peer, error_frame(
                    "bad-json", "truncated or oversized frame"
                ))
                return
            stripped = line.strip()
            if not stripped:
                continue  # blank keep-alive line
            frame_id = None
            try:
                obj = decode_frame(stripped)
                frame_id = obj.get("id")
                query = parse_query(obj)
            except ProtocolError as exc:
                logger.warning("%s: rejected frame: %s", peer, exc.message)
                if not self._send(
                    peer, error_frame(exc.code, exc.message, id=frame_id)
                ):
                    return
                continue
            with span("serve.request", cat="serve", op=query.op):
                job = self.server.engine.submit(query)
                timed_out = not job.wait(self.server.request_timeout_s)
            if timed_out:
                logger.warning("%s: %s timed out", peer, query.op)
                if not self._send(peer, error_frame(
                    ERR_TIMEOUT,
                    f"no response within {self.server.request_timeout_s}s",
                    id=frame_id,
                )):
                    return
                continue
            if not self._send(peer, job.response):
                return
            if query.op == "shutdown":
                return

    def _send(self, peer: str, payload: dict) -> bool:
        """Write one response frame; False when the client is gone."""
        try:
            self.wfile.write(encode_frame(payload))
            self.wfile.flush()
            return True
        except OSError as exc:
            logger.warning("%s: client gone mid-response: %s", peer, exc)
            return False


class _Server(socketserver.ThreadingTCPServer):
    """Accept loop that survives anything a connection throws at it."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, backlog: int, engine: PlacementEngine,
                 request_timeout_s: float) -> None:
        self.request_queue_size = backlog
        self.engine = engine
        self.request_timeout_s = request_timeout_s
        super().__init__(address, _Handler)

    def handle_error(self, request, client_address) -> None:
        """A handler crash is that connection's problem, never ours."""
        logger.warning(
            "connection %s died", client_address, exc_info=True
        )


class PlacementDaemon:
    """The long-lived placement service: engine + socket front-end.

    Parameters default to the ``SIBYL_SERVE_*`` environment knobs
    (:mod:`repro.serve.knobs`); ``port=0`` binds an ephemeral port,
    reported by :attr:`address`.  Usable as a context manager::

        with PlacementDaemon() as daemon:
            host, port = daemon.address
            ...

    ``serve_forever`` blocks until a client issues the ``shutdown`` op
    (which drains every lane first) or :meth:`close` is called.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        backlog: Optional[int] = None,
        workers: Optional[int] = None,
        batch: Optional[int] = None,
        train_mode: Optional[str] = None,
        request_timeout_s: float = 30.0,
    ) -> None:
        if port is None:
            port = resolve_serve_port()
        if backlog is None:
            backlog = resolve_serve_backlog()
        self.engine = PlacementEngine(
            batch=batch, workers=workers, train_mode=train_mode
        )
        self._server = _Server(
            (host, port), backlog, self.engine, request_timeout_s
        )
        self._accept_thread = threading.Thread(
            target=self._server.serve_forever,
            name="serve-accept",
            daemon=True,
        )
        self._stopped = threading.Event()
        self._started = False
        self.engine.on_shutdown = self._initiate_shutdown

    # ------------------------------------------------------------ lifecycle
    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — the real port when 0 was asked."""
        return self._server.server_address[:2]

    def start(self) -> "PlacementDaemon":
        """Start the engine and the accept loop; returns self."""
        if not self._started:
            self._started = True
            self.engine.start()
            self._accept_thread.start()
            logger.info("placement daemon listening on %s:%s", *self.address)
        return self

    def serve_forever(self) -> None:
        """Block until the daemon shuts down."""
        self.start()
        self._stopped.wait()

    def close(self) -> None:
        """Stop accepting, stop the engine, release the socket."""
        if self._stopped.is_set():
            return
        self._stopped.set()
        self._server.shutdown()
        self._server.server_close()
        self.engine.stop()
        # A tracer installed with a path (``--trace``/SIBYL_TRACE_PATH)
        # gets its spans on disk even if the driver never flushes.
        flush_tracer()
        logger.info("placement daemon stopped")

    def _initiate_shutdown(self) -> None:
        # Runs on the engine thread after a drained `shutdown` op.
        # serve_forever() must not be stopped from a thread it might be
        # waiting on, so a reaper thread tears the server down.
        threading.Thread(
            target=self.close, name="serve-reaper", daemon=True
        ).start()

    def __enter__(self) -> "PlacementDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()
