"""Deterministic open-loop multi-tenant load generator.

Drives a running placement daemon with ``tenants`` concurrent client
connections, each replaying a *deterministic* seeded query stream (the
sequences depend only on ``seed``, so every run asks the daemon the
exact same questions — the soak engine of the fault and lifecycle
tests, and the benchmark driver of ``scripts/profile_hotpath.py``).

Open-loop means each client *sends* on its own schedule (pipelined
back-to-back by default, or paced by ``pace_s``) while a separate
reader thread drains responses — send rate does not adapt to response
latency, so queueing at the daemon is measured, not hidden.  Reported:
nearest-rank p50/p99 placement latency and sustained req/s across all
tenants.

Run standalone (spawns an in-process daemon when no ``--port``)::

    python -m repro.serve.loadgen --quick
"""

from __future__ import annotations

import argparse
import json
import socket
import threading
import time
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .protocol import encode_frame

__all__ = ["synthetic_stream", "percentile", "run_loadgen", "main"]


def synthetic_stream(seed: int, n: int, pages: int = 512,
                     hot_pages: int = 64) -> List[Dict[str, Any]]:
    """A deterministic tenant query stream: ``n`` ``place`` frames.

    Seeded hot/cold page mix (70% of accesses hit a ``hot_pages``-page
    working set), 30% writes, sizes 1-4, timestamps spaced 0.1 ms — the
    same ``seed`` always yields the same frames, which is what lets the
    equivalence tests replay a load-generator run offline.
    """
    rng = np.random.default_rng(seed)
    frames = []
    for i in range(n):
        hot = rng.random() < 0.7
        page = int(rng.integers(0, hot_pages if hot else pages))
        frames.append({
            "op": "place",
            "id": i,
            "t": round(i * 1e-4, 10),
            "rw": "W" if rng.random() < 0.3 else "R",
            "page": page,
            "size": int(rng.integers(1, 5)),
        })
    return frames


def percentile(sorted_values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return float("nan")
    rank = max(1, int(np.ceil(q / 100.0 * len(sorted_values))))
    return float(sorted_values[rank - 1])


class _TenantClient:
    """One tenant connection: open, pipelined sends, threaded reads."""

    def __init__(self, host: str, port: int, name: str, seed: int,
                 frames: List[Dict[str, Any]], pace_s: float,
                 timeout_s: float, head: str) -> None:
        self.name = name
        self.frames = frames
        self.pace_s = pace_s
        self.timeout_s = timeout_s
        self.send_at: Dict[int, float] = {}
        self.recv_at: Dict[int, float] = {}
        #: Server-reported per-request phase timings (milliseconds),
        #: from the ``timing`` field of each ``place`` response.
        self.service_ms: List[float] = []
        self.queue_ms: List[float] = []
        self.errors = 0
        self.failure: Optional[str] = None
        self.sock = socket.create_connection((host, port), timeout=timeout_s)
        self.reader = self.sock.makefile("rb")
        self._handshake(seed, head)
        self._send_thread = threading.Thread(
            target=self._sender, name=f"loadgen-send-{name}", daemon=True
        )
        self._recv_thread = threading.Thread(
            target=self._receiver, name=f"loadgen-recv-{name}", daemon=True
        )

    def _handshake(self, seed: int, head: str) -> None:
        self.sock.sendall(encode_frame({
            "op": "open", "tenant": self.name, "seed": seed, "head": head,
        }))
        reply = json.loads(self.reader.readline())
        if not reply.get("ok"):
            raise RuntimeError(f"open rejected: {reply}")

    def start(self) -> None:
        """Launch the sender and reader threads."""
        self._send_thread.start()
        self._recv_thread.start()

    def join(self) -> None:
        """Wait for the full stream to complete; close the socket."""
        deadline = time.monotonic() + self.timeout_s
        for thread in (self._send_thread, self._recv_thread):
            thread.join(max(0.0, deadline - time.monotonic()))
            if thread.is_alive():
                self.failure = self.failure or "timed out"
        self.reader.close()
        self.sock.close()

    def _sender(self) -> None:
        try:
            for frame in self.frames:
                payload = encode_frame({**frame, "tenant": self.name})
                self.send_at[frame["id"]] = time.perf_counter()
                self.sock.sendall(payload)
                if self.pace_s > 0:
                    time.sleep(self.pace_s)
        except OSError as exc:
            self.failure = f"send failed: {exc}"

    def _receiver(self) -> None:
        try:
            for _ in range(len(self.frames)):
                line = self.reader.readline()
                now = time.perf_counter()
                if not line:
                    self.failure = "connection closed early"
                    return
                reply = json.loads(line)
                if reply.get("ok"):
                    self.recv_at[reply["id"]] = now
                    timing = reply.get("timing")
                    if timing is not None:
                        self.service_ms.append(timing["service_ms"])
                        self.queue_ms.append(timing["queue_ms"])
                else:
                    self.errors += 1
        except OSError as exc:
            self.failure = f"recv failed: {exc}"

    def latencies(self) -> List[float]:
        """Per-request wire latencies (seconds) of answered queries."""
        return [
            self.recv_at[i] - self.send_at[i]
            for i in self.recv_at
            if i in self.send_at
        ]


def run_loadgen(
    host: Optional[str] = None,
    port: Optional[int] = None,
    tenants: int = 4,
    requests: int = 200,
    seed: int = 0,
    pace_s: float = 0.0,
    head: str = "c51",
    timeout_s: float = 120.0,
) -> Dict[str, Any]:
    """Drive a daemon with ``tenants`` deterministic streams.

    With no ``host``/``port`` an in-process daemon is spawned on an
    ephemeral port and torn down afterwards.  Returns the benchmark
    record: ``p50_ms``/``p99_ms`` *sojourn* latency (client wire time:
    queueing at the daemon included), ``service_p50/p99_ms`` and
    ``queue_p50/p99_ms`` separated out of the sojourn via the server's
    per-response ``timing`` breakdown, sustained ``req_s``, totals (the
    ``serve`` section schema of ``BENCH_hotpath.json``), and the
    daemon's own ``metrics`` op snapshot under ``server``.
    """
    daemon = None
    if host is None or port is None:
        from .daemon import PlacementDaemon

        daemon = PlacementDaemon(port=0).start()
        host, port = daemon.address
    server_metrics = None
    try:
        clients = [
            _TenantClient(
                host, port, f"tenant-{i}", seed + i,
                synthetic_stream(seed + i, requests),
                pace_s, timeout_s, head,
            )
            for i in range(tenants)
        ]
        for client in clients:
            client.start()
        for client in clients:
            client.join()
        server_metrics = _fetch_metrics(host, port, timeout_s)
    finally:
        if daemon is not None:
            daemon.close()
    failures = [
        f"{c.name}: {c.failure}" for c in clients if c.failure is not None
    ]
    latencies = sorted(
        lat for client in clients for lat in client.latencies()
    )
    answered = sum(len(c.recv_at) for c in clients)
    first_send = min(
        (min(c.send_at.values()) for c in clients if c.send_at),
        default=float("nan"),
    )
    last_recv = max(
        (max(c.recv_at.values()) for c in clients if c.recv_at),
        default=float("nan"),
    )
    elapsed = last_recv - first_send
    service_ms = sorted(s for c in clients for s in c.service_ms)
    queue_ms = sorted(s for c in clients for s in c.queue_ms)
    return {
        "tenants": tenants,
        "requests_per_tenant": requests,
        "answered": answered,
        "errors": sum(c.errors for c in clients),
        "failures": failures,
        "p50_ms": percentile(latencies, 50.0) * 1e3,
        "p99_ms": percentile(latencies, 99.0) * 1e3,
        "service_p50_ms": percentile(service_ms, 50.0),
        "service_p99_ms": percentile(service_ms, 99.0),
        "queue_p50_ms": percentile(queue_ms, 50.0),
        "queue_p99_ms": percentile(queue_ms, 99.0),
        "req_s": answered / elapsed if elapsed > 0 else float("nan"),
        "server": server_metrics,
    }


def _fetch_metrics(
    host: str, port: int, timeout_s: float
) -> Optional[Dict[str, Any]]:
    """One-shot ``metrics`` op over a fresh control connection.

    Best-effort: the load report must survive a daemon that died under
    load, so any failure returns ``None`` instead of raising.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout_s) as sock:
            sock.sendall(encode_frame({"op": "metrics"}))
            reply = json.loads(sock.makefile("rb").readline())
    except (OSError, ValueError):
        return None
    if not reply.get("ok"):
        return None
    return {
        "uptime_s": reply.get("uptime_s"),
        "workers": reply.get("workers"),
        "trainer_busy_s": reply.get("trainer_busy_s"),
        "trainer_occupancy": reply.get("trainer_occupancy"),
        "queue_depth": reply.get("queue_depth"),
        "counters": reply.get("counters"),
    }


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point: run a load-generator pass, print JSON."""
    parser = argparse.ArgumentParser(
        description="Open-loop load generator for the placement daemon."
    )
    parser.add_argument("--host", default=None,
                        help="daemon host (default: spawn in-process)")
    parser.add_argument("--port", type=int, default=None,
                        help="daemon port (default: spawn in-process)")
    parser.add_argument("--tenants", type=int, default=4)
    parser.add_argument("--requests", type=int, default=200,
                        help="queries per tenant")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--pace", type=float, default=0.0,
                        help="inter-send gap per tenant, seconds")
    parser.add_argument("--head", default="c51", choices=("c51", "dqn"))
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test sizing: 2 tenants x 60 requests")
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="write a Chrome-trace-event span file here")
    args = parser.parse_args(argv)
    tenants, requests = args.tenants, args.requests
    if args.quick:
        tenants, requests = 2, 60
    from ..obs.tracer import flush_tracer, install_tracer, tracer_from_env

    if args.trace:
        install_tracer(args.trace)
    else:
        tracer_from_env()
    record = run_loadgen(
        host=args.host,
        port=args.port,
        tenants=tenants,
        requests=requests,
        seed=args.seed,
        pace_s=args.pace,
        head=args.head,
    )
    flush_tracer()
    print(json.dumps(record, indent=2, sort_keys=True))
    return 1 if record["failures"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
