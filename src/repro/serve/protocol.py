"""Wire protocol of the placement daemon: newline-delimited JSON.

One request frame per line, one response frame per line, UTF-8, no
framing beyond the newline — any language with a socket and a JSON
library is a client.  Every request carries an ``op`` and an optional
client-chosen ``id`` echoed verbatim in the response; every response
carries ``ok`` (boolean) and, when ``ok`` is false, an ``error`` code
from the closed set below plus a human-readable ``message``.

Request validation lives here so the engine only ever sees well-formed
queries: a malformed frame yields a structured error *response* (never
a daemon crash), and the error codes are part of the protocol contract
asserted by ``tests/serve/test_faults.py``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from ..hss.request import OpType, Request

__all__ = [
    "MAX_FRAME_BYTES",
    "OPS",
    "HYPERPARAM_FIELDS",
    "ERR_BAD_JSON",
    "ERR_BAD_REQUEST",
    "ERR_UNKNOWN_OP",
    "ERR_UNKNOWN_TENANT",
    "ERR_TENANT_EXISTS",
    "ERR_RELOAD_FAILED",
    "ERR_CHECKPOINT_FAILED",
    "ERR_SHUTTING_DOWN",
    "ERR_TIMEOUT",
    "ERR_INTERNAL",
    "ProtocolError",
    "Query",
    "decode_frame",
    "encode_frame",
    "error_frame",
    "ok_frame",
    "parse_query",
]

#: Hard per-frame size bound: a line longer than this is malformed by
#: definition (placement queries are ~100 bytes), so a garbage or
#: hostile sender cannot make a handler buffer unbounded input.
MAX_FRAME_BYTES = 1 << 20

#: The protocol's operations.
OPS = ("ping", "open", "place", "save", "reload", "stats", "metrics",
       "drain", "shutdown")

#: Hyper-parameter overrides accepted by ``open`` (whitelist — the
#: values feed ``dataclasses.replace`` on the Table 2 defaults).
HYPERPARAM_FIELDS = (
    "learning_rate", "discount", "exploration_rate", "batch_size",
    "buffer_capacity", "train_interval", "batches_per_training",
    "initial_random_requests",
)

ERR_BAD_JSON = "bad-json"
ERR_BAD_REQUEST = "bad-request"
ERR_UNKNOWN_OP = "unknown-op"
ERR_UNKNOWN_TENANT = "unknown-tenant"
ERR_TENANT_EXISTS = "tenant-exists"
ERR_RELOAD_FAILED = "reload-failed"
ERR_CHECKPOINT_FAILED = "checkpoint-failed"
ERR_SHUTTING_DOWN = "shutting-down"
ERR_TIMEOUT = "timeout"
ERR_INTERNAL = "internal-error"


class ProtocolError(ValueError):
    """A frame the protocol rejects; carries the response error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message


@dataclass
class Query:
    """One validated request frame, ready for the engine.

    ``fields`` holds the op-specific payload: ``place`` carries the
    parsed :class:`~repro.hss.request.Request` under ``"request"``,
    ``open`` the tenant construction parameters, ``save``/``reload``
    the checkpoint path.
    """

    op: str
    id: Optional[Any] = None
    tenant: Optional[str] = None
    fields: Dict[str, Any] = field(default_factory=dict)


def decode_frame(line: bytes) -> Dict[str, Any]:
    """Parse one raw line into a JSON object, or raise ProtocolError."""
    if len(line) > MAX_FRAME_BYTES:
        raise ProtocolError(ERR_BAD_JSON, "frame exceeds MAX_FRAME_BYTES")
    try:
        obj = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(ERR_BAD_JSON, f"undecodable frame: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(ERR_BAD_JSON, "frame must be a JSON object")
    return obj


def encode_frame(payload: Dict[str, Any]) -> bytes:
    """Serialise one response frame (compact JSON + newline).

    ``json`` round-trips Python floats exactly (shortest-repr), which
    is what lets the equivalence tests compare served latencies
    bit-for-bit across the wire.
    """
    return (json.dumps(payload, separators=(",", ":")) + "\n").encode("utf-8")


def error_frame(code: str, message: str, id: Any = None) -> Dict[str, Any]:
    """A structured error response."""
    out: Dict[str, Any] = {"ok": False, "error": code, "message": message}
    if id is not None:
        out["id"] = id
    return out


def ok_frame(payload: Dict[str, Any], id: Any = None) -> Dict[str, Any]:
    """A success response wrapping ``payload``."""
    out: Dict[str, Any] = {"ok": True}
    if id is not None:
        out["id"] = id
    out.update(payload)
    return out


# ------------------------------------------------------------- validation
def _require(obj: Dict[str, Any], key: str, kind, what: str):
    value = obj.get(key)
    if not isinstance(value, kind) or isinstance(value, bool):
        raise ProtocolError(ERR_BAD_REQUEST, f"{key!r} must be {what}")
    return value


def _tenant_name(obj: Dict[str, Any]) -> str:
    name = _require(obj, "tenant", str, "a non-empty string")
    if not name:
        raise ProtocolError(ERR_BAD_REQUEST, "'tenant' must be non-empty")
    return name


def _parse_place(obj: Dict[str, Any]) -> Request:
    page = _require(obj, "page", int, "a non-negative integer")
    if page < 0:
        raise ProtocolError(ERR_BAD_REQUEST, "'page' must be >= 0")
    size = obj.get("size", 1)
    if not isinstance(size, int) or isinstance(size, bool) or size < 1:
        raise ProtocolError(ERR_BAD_REQUEST, "'size' must be an integer >= 1")
    t = obj.get("t", 0.0)
    if not isinstance(t, (int, float)) or isinstance(t, bool) \
            or not math.isfinite(t) or t < 0:
        raise ProtocolError(ERR_BAD_REQUEST, "'t' must be a finite number >= 0")
    rw = obj.get("rw", "R")
    try:
        op = OpType.parse(str(rw))
    except ValueError:
        raise ProtocolError(ERR_BAD_REQUEST, f"unrecognised 'rw': {rw!r}") from None
    return Request(timestamp=float(t), op=op, page=page, size=size)


def _parse_open(obj: Dict[str, Any]) -> Dict[str, Any]:
    fields: Dict[str, Any] = {}
    seed = obj.get("seed", 0)
    if not isinstance(seed, int) or isinstance(seed, bool) or seed < 0:
        raise ProtocolError(ERR_BAD_REQUEST, "'seed' must be an integer >= 0")
    fields["seed"] = seed
    config = obj.get("config", "H&M")
    if not isinstance(config, str) or not config:
        raise ProtocolError(ERR_BAD_REQUEST, "'config' must be a device string")
    fields["config"] = config
    head = obj.get("head", "c51")
    if head not in ("c51", "dqn"):
        raise ProtocolError(ERR_BAD_REQUEST, "'head' must be 'c51' or 'dqn'")
    fields["head"] = head
    caps = obj.get("capacity_pages", 1024)
    if isinstance(caps, int) and not isinstance(caps, bool):
        caps = [caps]
    if not (
        isinstance(caps, list)
        and caps
        and all(isinstance(c, int) and not isinstance(c, bool) and c >= 1
                for c in caps)
    ):
        raise ProtocolError(
            ERR_BAD_REQUEST,
            "'capacity_pages' must be a positive integer or list thereof",
        )
    fields["capacity_pages"] = caps
    hp = obj.get("hyperparams", {})
    if not isinstance(hp, dict):
        raise ProtocolError(ERR_BAD_REQUEST, "'hyperparams' must be an object")
    unknown = sorted(set(hp) - set(HYPERPARAM_FIELDS))
    if unknown:
        raise ProtocolError(
            ERR_BAD_REQUEST, f"unknown hyperparams: {', '.join(unknown)}"
        )
    fields["hyperparams"] = hp
    return fields


def parse_query(obj: Dict[str, Any]) -> Query:
    """Validate a decoded frame into a :class:`Query`.

    Raises :class:`ProtocolError` with ``ERR_UNKNOWN_OP`` /
    ``ERR_BAD_REQUEST`` on anything the engine must never see.
    """
    op = obj.get("op")
    if op not in OPS:
        raise ProtocolError(
            ERR_UNKNOWN_OP,
            f"unknown op {op!r}; expected one of {', '.join(OPS)}",
        )
    query = Query(op=op, id=obj.get("id"))
    if op in ("ping", "stats", "metrics", "drain", "shutdown"):
        return query
    query.tenant = _tenant_name(obj)
    if op == "place":
        query.fields["request"] = _parse_place(obj)
    elif op == "open":
        query.fields.update(_parse_open(obj))
    else:  # save / reload
        path = _require(obj, "checkpoint", str, "a filesystem path string")
        if not path:
            raise ProtocolError(ERR_BAD_REQUEST, "'checkpoint' must be non-empty")
        query.fields["checkpoint"] = path
    return query
