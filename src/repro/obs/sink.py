"""Tick-domain observation sinks: counting without clocks.

SBL-DET forbids wall-clock reads inside ``repro.{sim,rl,hss,store}``,
so the bit-identity core cannot carry timers.  What it *can* carry is
counts — ticks, fused forwards, training events, kernel-barrier
crossings — because incrementing a Python int neither reads a clock
nor touches the simulated float path.  :class:`ObservationSink` is the
protocol the engines emit those counts through; implementations decide
what the counts become (a plain dict for callers, a metrics registry
for live introspection, several at once via :class:`TeeSink`).

The canonical counter names emitted by the engines are listed in
:data:`ENGINE_COUNTERS` / :data:`ENGINE_MAXIMA` and documented on
:func:`repro.sim.lanes.run_lanes`.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

Number = Union[int, float]

#: Monotonic counters every engine backend feeds (see ``run_lanes``).
ENGINE_COUNTERS = (
    "ticks",
    "fused_forwards",
    "fused_rows",
    "train_events",
    "fused_train_events",
    "kernel_barriers",
)

#: High-water-mark observations (``record_max``) the engines feed.
ENGINE_MAXIMA = ("max_fused_rows",)


class ObservationSink:
    """Protocol for tick-domain engine instrumentation.

    Two operations only — both clock-free and side-effect-free with
    respect to simulation state:

    - :meth:`count` adds ``n`` to a named monotonic counter;
    - :meth:`record_max` raises a named high-water mark.

    The base class is a usable no-op, so engines may call a sink
    unconditionally once they hold one.
    """

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the counter ``name`` (no-op here)."""

    def record_max(self, name: str, value: Number) -> None:
        """Raise the high-water mark ``name`` to ``value`` (no-op here)."""


class DictSink(ObservationSink):
    """Sink that accumulates into a caller-owned plain dict.

    This is the compatibility carrier for the historical
    ``run_lanes(stats=...)`` API: missing keys are created on first
    touch, so ``stats={}`` works.
    """

    def __init__(self, stats: Dict[str, Number]) -> None:
        """Wrap ``stats``; the dict is mutated in place."""
        self.stats = stats

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to ``stats[name]`` (creating it at 0)."""
        self.stats[name] = self.stats.get(name, 0) + n

    def record_max(self, name: str, value: Number) -> None:
        """Raise ``stats[name]`` to at least ``value``."""
        if value > self.stats.get(name, 0):
            self.stats[name] = value


class TeeSink(ObservationSink):
    """Fan a single observation stream out to several sinks."""

    def __init__(self, sinks: Sequence[ObservationSink]) -> None:
        """Forward every observation to each sink in ``sinks``."""
        self.sinks = tuple(sinks)

    def count(self, name: str, n: int = 1) -> None:
        """Forward the count to every sink."""
        for sink in self.sinks:
            sink.count(name, n)

    def record_max(self, name: str, value: Number) -> None:
        """Forward the high-water mark to every sink."""
        for sink in self.sinks:
            sink.record_max(name, value)


def combine_sinks(*sinks: ObservationSink) -> Union[ObservationSink, None]:
    """Collapse ``sinks`` (dropping ``None``) to one sink or ``None``."""
    real = [s for s in sinks if s is not None]
    if not real:
        return None
    if len(real) == 1:
        return real[0]
    return TeeSink(real)


__all__ = [
    "ENGINE_COUNTERS",
    "ENGINE_MAXIMA",
    "ObservationSink",
    "DictSink",
    "TeeSink",
    "combine_sinks",
]
