"""Unified observability: metrics, spans, and tick-domain sinks.

The repo's SBL-DET rule bans wall-clock reads inside the bit-identity
core (``repro.{sim,rl,hss,store}``), which makes "just add timers" the
wrong instinct.  This package splits telemetry into two domains:

- **Tick domain** (:mod:`repro.obs.sink`): clock-free counters the
  engines emit through :class:`~repro.obs.sink.ObservationSink` —
  ticks, fused forwards/rows, training events, kernel-barrier
  crossings, store hits/misses.  Safe anywhere, including the core.
- **Wall-clock domain** (:mod:`repro.obs.metrics`,
  :mod:`repro.obs.tracer`): timed spans (Chrome-trace-event JSON,
  Perfetto-loadable) and duration histograms, recorded strictly from
  driver-side call sites *outside* the determinism scope.

Everything is stdlib-only and no-op-cheap when disabled: metrics gate
on ``SIBYL_OBS``, spans on whether a tracer is installed (the
``SIBYL_TRACE_PATH`` knob or a ``--trace`` flag).  See
``docs/observability.md`` for the design and the span taxonomy, and
:func:`engine_sink` for how the two domains meet at ``run_lanes``.
"""

from __future__ import annotations

from typing import Optional

from .knobs import (
    OBS_ENV,
    TRACE_BUFFER_ENV,
    TRACE_PATH_ENV,
    resolve_obs_mode,
    resolve_trace_buffer,
)
from .metrics import MetricsRegistry, RegistrySink, active_registry, registry
from .sink import DictSink, ObservationSink, TeeSink, combine_sinks
from .tracer import (
    SpanTracer,
    flush_tracer,
    get_tracer,
    install_tracer,
    set_tracer,
    span,
    tracer_from_env,
)


def engine_sink() -> Optional[ObservationSink]:
    """A registry-backed sink when ``SIBYL_OBS=on``, else ``None``.

    The engines call this once per ``run_lanes`` invocation (never in
    the tick loop) to decide whether tick-domain counts should also
    feed the process-wide metrics registry.
    """
    reg = active_registry()
    if reg is None:
        return None
    return RegistrySink(reg)


__all__ = [
    "OBS_ENV",
    "TRACE_PATH_ENV",
    "TRACE_BUFFER_ENV",
    "resolve_obs_mode",
    "resolve_trace_buffer",
    "MetricsRegistry",
    "RegistrySink",
    "registry",
    "active_registry",
    "ObservationSink",
    "DictSink",
    "TeeSink",
    "combine_sinks",
    "SpanTracer",
    "span",
    "get_tracer",
    "set_tracer",
    "install_tracer",
    "tracer_from_env",
    "flush_tracer",
    "engine_sink",
]
