"""Environment knobs for the observability subsystem.

Three knobs control telemetry, all routed through the engine's shared
resolver contracts (:func:`repro.sim.lanes.resolve_count_env` /
:func:`repro.sim.lanes.resolve_choice_env`) so garbage values raise
instead of silently disabling instrumentation:

- ``SIBYL_OBS`` — ``off`` (default) or ``on``.  Gates the process-wide
  metrics registry: when off, :func:`repro.obs.metrics.active_registry`
  returns ``None`` and every call site degrades to a branch on ``None``.
- ``SIBYL_TRACE_PATH`` — when set, :func:`repro.obs.tracer.tracer_from_env`
  installs a span tracer that flushes Chrome-trace-event JSON to this
  path.  Unset (default) means no tracer.
- ``SIBYL_TRACE_BUFFER`` — ring-buffer capacity (span count) of the
  tracer; oldest spans are dropped first.  Default 65536.

The resolvers live here — outside the SBL-DET scope — because the
observability layer is the one place the repo reads wall clocks; the
bit-identity core (``repro.{sim,rl,hss,store}``) only ever counts ticks
through :class:`repro.obs.sink.ObservationSink`.
"""

from __future__ import annotations

#: Gate for the process-wide metrics registry (``off``/``on``).
OBS_ENV = "SIBYL_OBS"

#: Valid ``SIBYL_OBS`` tokens.
OBS_MODES = ("off", "on")

#: When set, the path span traces are flushed to (Chrome trace JSON).
TRACE_PATH_ENV = "SIBYL_TRACE_PATH"

#: Ring-buffer capacity (number of retained spans) of the tracer.
TRACE_BUFFER_ENV = "SIBYL_TRACE_BUFFER"

#: Default tracer ring-buffer capacity.
DEFAULT_TRACE_BUFFER = 65536


def resolve_obs_mode(default: str = "off") -> str:
    """``SIBYL_OBS`` via the shared choice contract (``off``/``on``)."""
    from ..sim.lanes import resolve_choice_env

    return resolve_choice_env(OBS_ENV, default, OBS_MODES)


def resolve_trace_buffer(default: int = DEFAULT_TRACE_BUFFER) -> int:
    """``SIBYL_TRACE_BUFFER`` via the shared count contract (>= 1)."""
    from ..sim.lanes import resolve_count_env

    return max(1, resolve_count_env(TRACE_BUFFER_ENV, default))


__all__ = [
    "OBS_ENV",
    "OBS_MODES",
    "TRACE_PATH_ENV",
    "TRACE_BUFFER_ENV",
    "DEFAULT_TRACE_BUFFER",
    "resolve_obs_mode",
    "resolve_trace_buffer",
]
