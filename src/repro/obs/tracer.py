"""Span tracer: Chrome-trace-event JSON in a bounded ring buffer.

Spans are wall-clock intervals — and wall clocks are exactly what
SBL-DET bans from the bit-identity core — so everything in this module
lives outside the determinism scope and is only ever *called from*
driver-side code: ``sim/parallel`` dispatch, store I/O call sites, the
kernel build/invoke boundary in ``engine_c``, and the serve request
lifecycle.  The core itself never imports this module.

Events use the Chrome trace-event format (``ph="X"`` complete events
with microsecond ``ts``/``dur``), so a flushed file loads directly in
Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``; see
``docs/observability.md`` for the span taxonomy.  The buffer is a
bounded deque — a runaway campaign drops its *oldest* spans instead of
growing without limit — and :meth:`SpanTracer.flush` writes the file
atomically (same-directory tmp + fsync + rename), so a reader never
sees a torn trace.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, List, Optional

from .knobs import TRACE_PATH_ENV, resolve_trace_buffer


class SpanTracer:
    """Thread-safe ring buffer of Chrome trace events.

    One tracer serves the whole process; every recording helper takes
    the buffer lock, and timestamps are ``time.perf_counter()`` offsets
    from the tracer's creation (the trace origin is 0 µs).
    """

    def __init__(self, path: Optional[str] = None, capacity: Optional[int] = None) -> None:
        """Create a tracer flushing to ``path`` with ``capacity`` spans.

        ``capacity=None`` resolves ``SIBYL_TRACE_BUFFER``; ``path=None``
        means :meth:`flush` requires an explicit path.
        """
        self.path = path
        self.capacity = capacity if capacity is not None else resolve_trace_buffer()
        self._events: Deque[Dict[str, object]] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self._pid = os.getpid()
        self._dropped = 0

    def _now_us(self) -> float:
        return (time.perf_counter() - self._t0) * 1e6

    def add_event(self, event: Dict[str, object]) -> None:
        """Append a raw trace event dict (caller supplies all fields)."""
        with self._lock:
            if len(self._events) == self._events.maxlen:
                self._dropped += 1
            self._events.append(event)

    @contextmanager
    def span(self, name: str, cat: str = "", **args: object) -> Iterator[None]:
        """Record a complete (``ph="X"``) event around the ``with`` body.

        ``args`` become the event's ``args`` payload and must be
        JSON-serializable.  The event is recorded even when the body
        raises, with ``args["error"]`` set to the exception type.
        """
        t0 = self._now_us()
        payload = dict(args)
        try:
            yield
        except BaseException as exc:
            payload["error"] = type(exc).__name__
            raise
        finally:
            self.add_event(
                {
                    "name": name,
                    "cat": cat or "repro",
                    "ph": "X",
                    "ts": round(t0, 3),
                    "dur": round(self._now_us() - t0, 3),
                    "pid": self._pid,
                    "tid": threading.get_ident() % 2**31,
                    "args": payload,
                }
            )

    def instant(self, name: str, cat: str = "", **args: object) -> None:
        """Record an instant (``ph="i"``) event at the current time."""
        self.add_event(
            {
                "name": name,
                "cat": cat or "repro",
                "ph": "i",
                "s": "t",
                "ts": round(self._now_us(), 3),
                "pid": self._pid,
                "tid": threading.get_ident() % 2**31,
                "args": dict(args),
            }
        )

    def events(self) -> List[Dict[str, object]]:
        """Snapshot the buffered events (oldest first)."""
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer since creation."""
        with self._lock:
            return self._dropped

    def flush(self, path: Optional[str] = None) -> str:
        """Atomically write ``{"traceEvents": [...]}`` and return the path.

        Same-directory tmp file + fsync + ``os.replace``, so a crashed
        flush never leaves a torn file and a concurrent reader sees
        either the previous complete trace or the new one.
        """
        target = path or self.path
        if not target:
            raise ValueError("no trace path: pass one or construct with path=")
        events = self.events()
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped": self.dropped, "capacity": self.capacity},
        }
        target = os.path.abspath(target)
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, separators=(",", ":"))
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, target)
        return target


class _NullSpan:
    """Reusable no-op context manager for the disabled tracer path."""

    def __enter__(self) -> None:
        """No-op."""
        return None

    def __exit__(self, *exc: object) -> bool:
        """No-op; never swallows exceptions."""
        return False


_NULL_SPAN = _NullSpan()
_tracer: Optional[SpanTracer] = None


def get_tracer() -> Optional[SpanTracer]:
    """The installed process tracer, or ``None``."""
    return _tracer


def set_tracer(tracer: Optional[SpanTracer]) -> Optional[SpanTracer]:
    """Install (or clear, with ``None``) the process tracer; return it."""
    global _tracer
    _tracer = tracer
    return tracer


def install_tracer(path: str, capacity: Optional[int] = None) -> SpanTracer:
    """Create a :class:`SpanTracer` flushing to ``path`` and install it."""
    return set_tracer(SpanTracer(path=path, capacity=capacity))


def tracer_from_env() -> Optional[SpanTracer]:
    """Install a tracer when ``SIBYL_TRACE_PATH`` is set; else ``None``.

    The sanctioned env accessor for the trace path (SBL-ENV lists it
    alongside ``resolve_count_env``/``store_from_env``): an empty or
    unset path means tracing stays off.
    """
    path = os.environ.get(TRACE_PATH_ENV, "").strip()
    if not path:
        return None
    return install_tracer(path)


def span(name: str, cat: str = "", **args: object):
    """A span on the installed tracer, or a shared no-op context.

    The module-level entry point for instrumented call sites: when no
    tracer is installed the cost is a global load, a ``None`` test, and
    re-entering a singleton no-op context manager.
    """
    tracer = _tracer
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, cat, **args)


def flush_tracer() -> Optional[str]:
    """Flush the installed tracer to its path, if both exist."""
    tracer = _tracer
    if tracer is None or not tracer.path:
        return None
    return tracer.flush()


__all__ = [
    "SpanTracer",
    "get_tracer",
    "set_tracer",
    "install_tracer",
    "tracer_from_env",
    "span",
    "flush_tracer",
]
