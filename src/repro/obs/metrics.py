"""Process-wide metrics registry: counters, gauges, histograms.

Stdlib-only, thread-safe, and no-op-cheap when disabled: the registry
is gated by the ``SIBYL_OBS`` knob (see :mod:`repro.obs.knobs`), and
:func:`active_registry` returns ``None`` when it is off, so a call
site's full disabled cost is one function call and a ``None`` branch.
Components that are *always* observable regardless of the knob — the
serve engine, whose metrics back the ``metrics`` protocol op — create
their own :class:`MetricsRegistry` instance instead of using the
process-wide one.

Instruments carry optional label sets (``registry.counter("store_get",
outcome="hit")``); each distinct ``(name, labels)`` pair is a distinct
instrument, created on first use and stable thereafter.  Histograms
use fixed bucket bounds chosen at creation, so merging and summarising
never re-bins.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Dict, Optional, Sequence, Tuple, Union

from .knobs import resolve_obs_mode

Number = Union[int, float]
LabelKey = Tuple[Tuple[str, str], ...]

#: Default histogram bucket upper bounds (milliseconds-flavoured, but
#: unit-agnostic): sub-tenth resolution at the fast end, coarse at the
#: tail.  An implicit +inf bucket always exists.
DEFAULT_BUCKETS = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0,
    100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0,
)


class Counter:
    """A monotonically increasing numeric counter."""

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        """Create the counter at 0; use via a registry, not directly."""
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: Number = 0

    def add(self, n: Number = 1) -> None:
        """Add ``n`` (must be >= 0) to the counter."""
        if n < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (add {n})")
        with self._lock:
            self._value += n

    def inc(self) -> None:
        """Add 1 to the counter."""
        self.add(1)

    @property
    def value(self) -> Number:
        """Current counter value."""
        with self._lock:
            return self._value


class Gauge:
    """A settable instantaneous value (e.g. queue depth)."""

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        """Create the gauge at 0; use via a registry, not directly."""
        self.name = name
        self.labels = labels
        self._lock = threading.Lock()
        self._value: Number = 0

    def set(self, value: Number) -> None:
        """Set the gauge to ``value``."""
        with self._lock:
            self._value = value

    def add(self, n: Number) -> None:
        """Add ``n`` (may be negative) to the gauge."""
        with self._lock:
            self._value += n

    def set_max(self, value: Number) -> None:
        """Raise the gauge to ``value`` if it is below it."""
        with self._lock:
            if value > self._value:
                self._value = value

    @property
    def value(self) -> Number:
        """Current gauge value."""
        with self._lock:
            return self._value


class Histogram:
    """A fixed-bucket histogram of observed values.

    Buckets are upper bounds in ascending order; an implicit +inf
    bucket catches the tail.  ``summary()`` reports count/sum/min/max
    plus per-bucket counts, and ``percentile()`` interpolates a
    bucket-resolution estimate (exact percentiles belong to the caller
    that kept the raw samples).
    """

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        """Create an empty histogram with the given bucket bounds."""
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"histogram {name!r} buckets must be ascending")
        self.name = name
        self.labels = labels
        self.bounds = tuple(float(b) for b in buckets)
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def observe(self, value: Number) -> None:
        """Record one observation."""
        value = float(value)
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def percentile(self, q: float) -> Optional[float]:
        """Bucket-resolution estimate of the ``q``-th percentile (0-100)."""
        if not 0 <= q <= 100:
            raise ValueError(f"percentile q must be in [0, 100], got {q}")
        with self._lock:
            if self._count == 0:
                return None
            rank = max(1, round(q / 100.0 * self._count))
            seen = 0
            for idx, n in enumerate(self._counts):
                seen += n
                if seen >= rank:
                    if idx < len(self.bounds):
                        return self.bounds[idx]
                    return self._max
            return self._max

    def summary(self) -> Dict[str, object]:
        """Serializable snapshot: count, sum, min, max, mean, buckets."""
        with self._lock:
            mean = (self._sum / self._count) if self._count else None
            return {
                "count": self._count,
                "sum": round(self._sum, 6),
                "min": self._min,
                "max": self._max,
                "mean": round(mean, 6) if mean is not None else None,
                "buckets": dict(zip(self.bounds, self._counts)),
                "overflow": self._counts[-1],
            }

    @property
    def count(self) -> int:
        """Number of observations recorded so far."""
        with self._lock:
            return self._count


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _label_str(labels: LabelKey) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


class MetricsRegistry:
    """Thread-safe get-or-create home for a component's instruments.

    Instruments are addressed by ``(name, labels)``; the first call
    creates, later calls return the same object, so hot paths can hold
    an instrument directly and skip the lookup.  ``snapshot()`` renders
    everything to plain JSON-serializable data.
    """

    def __init__(self, enabled: bool = True) -> None:
        """Create an empty registry.

        ``enabled=False`` builds a registry whose instruments still
        work (useful for tests); gating belongs to call sites via
        :func:`active_registry`.
        """
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, LabelKey], Histogram] = {}

    def counter(self, name: str, **labels: object) -> Counter:
        """Get or create the counter ``name`` with ``labels``."""
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._counters.get(key)
            if inst is None:
                inst = self._counters[key] = Counter(name, key[1])
            return inst

    def gauge(self, name: str, **labels: object) -> Gauge:
        """Get or create the gauge ``name`` with ``labels``."""
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._gauges.get(key)
            if inst is None:
                inst = self._gauges[key] = Gauge(name, key[1])
            return inst

    def histogram(
        self,
        name: str,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """Get or create the histogram ``name`` with ``labels``.

        ``buckets`` only applies on first creation; later calls return
        the existing instrument unchanged.
        """
        key = (name, _label_key(labels))
        with self._lock:
            inst = self._histograms.get(key)
            if inst is None:
                inst = self._histograms[key] = Histogram(name, key[1], buckets)
            return inst

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Render all instruments to plain serializable dicts."""
        with self._lock:
            counters = list(self._counters.values())
            gauges = list(self._gauges.values())
            histograms = list(self._histograms.values())
        return {
            "counters": {
                c.name + _label_str(c.labels): c.value for c in counters
            },
            "gauges": {
                g.name + _label_str(g.labels): g.value for g in gauges
            },
            "histograms": {
                h.name + _label_str(h.labels): h.summary() for h in histograms
            },
        }

    def reset(self) -> None:
        """Drop every instrument (tests and long-lived daemons)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


class RegistrySink:
    """Adapter feeding engine tick-domain counts into a registry.

    Bridges :class:`repro.obs.sink.ObservationSink` to
    :class:`MetricsRegistry`: ``count`` lands in a counter prefixed
    ``engine_``, ``record_max`` in a gauge holding the high-water mark.
    """

    def __init__(self, registry: MetricsRegistry) -> None:
        """Feed observations into ``registry``."""
        self.registry = registry

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the ``engine_<name>`` counter."""
        self.registry.counter("engine_" + name).add(n)

    def record_max(self, name: str, value: Number) -> None:
        """Raise the ``engine_<name>`` gauge high-water mark."""
        self.registry.gauge("engine_" + name).set_max(value)


_GLOBAL = MetricsRegistry(enabled=True)


def registry() -> MetricsRegistry:
    """The process-wide registry (always real; gate via active_registry)."""
    return _GLOBAL


def active_registry() -> Optional[MetricsRegistry]:
    """The process-wide registry when ``SIBYL_OBS=on``, else ``None``.

    This is the gate every optional call site goes through: the
    disabled cost is one env read and a ``None`` check, and no
    instrument objects are ever created.
    """
    if resolve_obs_mode() == "on":
        return _GLOBAL
    return None


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RegistrySink",
    "registry",
    "active_registry",
]
