"""Campaign journals: durable grid membership for crash-safe resume.

A journal records *what a campaign was going to compute* — the ordered
``(cell key, cell fingerprint)`` grid — before any cell is dispatched.
Cells themselves are content-addressed (a finished cell's blob exists
independently of any campaign), so the journal's job is bookkeeping,
not recovery: after a crash it tells you which campaign was interrupted
and how far it got (``store.contains`` over its grid), and a rerun of
the same sweep lands on the same journal (the grid fingerprint is
order-independent) and dispatches only the missing cells.

Journals are written atomically (temp file + ``os.replace``) in the
store's ``journals/`` directory, one file per grid fingerprint, and are
as corruption-tolerant as cell blobs: a torn or garbage journal is
logged and rewritten, never fatal.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass
from pathlib import Path
from typing import Hashable, List, Optional, Sequence, Tuple

from .fingerprint import fingerprint_grid

__all__ = ["CampaignJournal", "load_journal", "write_journal"]

logger = logging.getLogger("repro.store")


@dataclass
class CampaignJournal:
    """One campaign's durable grid record.

    ``grid`` is the order-independent fingerprint of the cell set;
    ``cells`` the ordered ``(printable key, fingerprint)`` membership;
    ``status`` is ``"running"`` until every cell landed, then
    ``"complete"``; ``runs`` counts how many times this grid was
    (re)started — 2+ with status ``"running"`` is the signature of a
    crash-and-resume history.
    """

    grid: str
    cells: List[Tuple[str, str]]
    status: str = "running"
    runs: int = 1

    @classmethod
    def for_grid(
        cls, keys: Sequence[Hashable], fingerprints: Sequence[str]
    ) -> "CampaignJournal":
        """Fresh journal for a grid of cells (keys rendered printable)."""
        cells = [
            (repr(key), fp) for key, fp in zip(keys, fingerprints)
        ]
        return cls(grid=fingerprint_grid(list(fingerprints)), cells=cells)

    def path_in(self, journals_dir: Path) -> Path:
        """This journal's file under a store's ``journals/`` directory."""
        return journals_dir / f"{self.grid}.json"


def load_journal(path: Path) -> Optional[CampaignJournal]:
    """Read a journal file; a missing/torn/garbage file is ``None``.

    Corruption is logged and treated as absence — the caller rewrites
    the journal, and the content-addressed cells are unaffected.
    """
    try:
        payload = json.loads(path.read_text())
        cells = [
            (str(key), str(fp)) for key, fp in payload["cells"]
        ]
        return CampaignJournal(
            grid=str(payload["grid"]),
            cells=cells,
            status=str(payload["status"]),
            runs=int(payload["runs"]),
        )
    except FileNotFoundError:
        return None
    except (OSError, ValueError, KeyError, TypeError) as exc:
        logger.warning("ignoring corrupt campaign journal %s: %s", path, exc)
        return None


def write_journal(journal: CampaignJournal, journals_dir: Path) -> Path:
    """Atomically persist a journal (temp file + rename)."""
    from .store import atomic_write_text  # shared atomic-rename helper

    path = journal.path_in(journals_dir)
    payload = {
        "grid": journal.grid,
        "status": journal.status,
        "runs": journal.runs,
        "cells": [list(cell) for cell in journal.cells],
    }
    atomic_write_text(path, json.dumps(payload, indent=1) + "\n")
    return path
