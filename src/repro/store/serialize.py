"""Lossless JSON serialisation of cell results.

The store's contract is that a warm campaign renders **byte-identical**
reports to a cold one, so the round trip through disk must preserve
cell results exactly: float leaves (``repr``-round-tripping is native
to :mod:`json`, and ``NaN``/``Infinity`` tokens cover the degenerate
normalised metrics), container types (a tuple must come back a tuple),
dict insertion order (report tables render in it), and the
:class:`repro.sim.campaign.SeededResult` bands of multi-seed campaigns
(rebuilt as real ``SeededResult`` instances, so
:func:`repro.sim.report.format_table` and :func:`~repro.sim.report.export_json`
cannot tell a cached cell from a fresh one).

This is deliberately **not** a general object serialiser: anything
outside the closed set above raises :class:`Unstorable`, and the store
then skips caching that cell rather than persisting something it could
not faithfully restore.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["Unstorable", "encode_result", "decode_result"]

#: Marker key of tagged container encodings.  Results never contain it
#: as a plain dict key (enforced on encode), so decoding is unambiguous.
_KIND = "__kind__"


class Unstorable(TypeError):
    """A cell result contains a value the store cannot round-trip."""


def _is_seeded(value: Any) -> bool:
    # Duck-typed to avoid importing the campaign layer for every store
    # operation; matches repro.sim.campaign.SeededResult's field set.
    return (
        hasattr(value, "values")
        and hasattr(value, "mean")
        and hasattr(value, "ci_lo")
        and hasattr(value, "ci_hi")
        and hasattr(value, "std")
        and not isinstance(value, Mapping)
    )


def encode_result(value: Any) -> Any:
    """Encode a cell result as JSON-able data (see module docstring)."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return value  # json emits repr / NaN / Infinity, all round-trip
    if _is_seeded(value):
        seeds = getattr(value, "seeds", None)
        return {
            _KIND: "seeded",
            "values": [float(v) for v in value.values],
            "mean": float(value.mean),
            "std": float(value.std),
            "min": float(value.min),
            "max": float(value.max),
            "ci_lo": float(value.ci_lo),
            "ci_hi": float(value.ci_hi),
            "seeds": None if seeds is None else [int(s) for s in seeds],
        }
    if isinstance(value, Mapping):
        if all(isinstance(k, str) for k in value) and _KIND not in value:
            return {k: encode_result(v) for k, v in value.items()}
        # Non-string (or marker-colliding) keys: keep order, tag types.
        return {
            _KIND: "dict",
            "items": [
                [encode_result(_encode_key(k)), encode_result(v)]
                for k, v in value.items()
            ],
        }
    if isinstance(value, tuple):
        return {_KIND: "tuple", "items": [encode_result(v) for v in value]}
    if isinstance(value, list):
        return [encode_result(v) for v in value]
    raise Unstorable(
        f"cannot losslessly store {type(value).__name__}: {value!r}"
    )


def _encode_key(key: Any) -> Any:
    if key is None or isinstance(key, (bool, int, float, str, tuple)):
        return key
    raise Unstorable(f"cannot losslessly store dict key {key!r}")


def decode_result(value: Any) -> Any:
    """Invert :func:`encode_result` exactly."""
    if isinstance(value, list):
        return [decode_result(v) for v in value]
    if isinstance(value, dict):
        kind = value.get(_KIND)
        if kind is None:
            return {k: decode_result(v) for k, v in value.items()}
        if kind == "tuple":
            return tuple(decode_result(v) for v in value["items"])
        if kind == "dict":
            return {
                decode_result(k): decode_result(v)
                for k, v in value["items"]
            }
        if kind == "seeded":
            from ..sim.campaign import SeededResult

            seeds = value["seeds"]
            return SeededResult(
                values=tuple(float(v) for v in value["values"]),
                mean=float(value["mean"]),
                std=float(value["std"]),
                min=float(value["min"]),
                max=float(value["max"]),
                ci_lo=float(value["ci_lo"]),
                ci_hi=float(value["ci_hi"]),
                seeds=None if seeds is None else tuple(int(s) for s in seeds),
            )
        raise Unstorable(f"unknown stored kind {kind!r}")
    return value
