"""The durable campaign store: crash-safe on-disk cache of cell results.

:class:`CampaignStore` persists every finished sweep cell under a
store directory (default ``.sibyl-store/``) keyed by its content
fingerprint (:mod:`repro.store.fingerprint`):

```text
.sibyl-store/
    store.json            # informational: schema + engine versions
    cells/<fp[:2]>/<fp>.json   # one atomic JSON blob per cell result
    index.jsonl           # append-only listing (advisory, rebuildable)
    journals/<grid>.json  # one journal per campaign grid
```

Durability model — every guarantee a mid-campaign ``kill -9`` needs:

* **Atomic blobs.**  A cell blob is written to a temp file in the same
  directory, flushed, fsynced, then ``os.replace``d into place; readers
  only ever see a complete blob or no blob.
* **Advisory index.**  ``index.jsonl`` is appended one line per stored
  cell for cheap listing; the blob files are authoritative, so a torn
  tail line (the one write that is *not* atomic) is skipped on read and
  :meth:`CampaignStore.rebuild_index` regenerates the file from blobs.
* **Corruption never propagates.**  A truncated or garbage blob, index
  line, or journal is logged at ``WARNING`` (logger ``repro.store``),
  treated as a miss, and recomputed — it cannot crash a campaign or
  poison a report (``tests/store/test_corruption.py``).
* **Versioned addressing.**  The schema and engine versions are folded
  into every fingerprint, so a schema/engine bump orphans old blobs
  instead of misreading them.

The cache contract mirrors the repo's bit-identity guarantee: a stored
result decodes to exactly the object the cell function returned
(:mod:`repro.store.serialize`), so warm campaigns render byte-identical
reports to cold ones.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Any, Callable, Dict, Hashable, Iterator, List, Optional, Sequence, Union

from .fingerprint import (
    ENGINE_VERSION,
    SCHEMA_VERSION,
    Unfingerprintable,
    fingerprint_cell,
)
from .journal import CampaignJournal, load_journal, write_journal
from .serialize import Unstorable, decode_result, encode_result

__all__ = [
    "MISS",
    "DEFAULT_STORE_DIR",
    "STORE_ENV",
    "CampaignStore",
    "resolve_store",
    "store_from_env",
    "atomic_write_text",
]

logger = logging.getLogger("repro.store")

#: Default store directory (relative to the working directory).
DEFAULT_STORE_DIR = ".sibyl-store"

#: Environment knob: when set, benchmarks (and ``repro compare`` without
#: explicit flags) keep their campaign cells warm under this directory.
STORE_ENV = "SIBYL_STORE"

#: Sentinel for "no stored result" — distinct from any legal cell result.
MISS = object()


def atomic_write_text(path: Path, text: str) -> None:
    """Crash-safe file write: same-directory temp file + ``os.replace``.

    The rename is atomic on POSIX, so concurrent readers (and readers
    after a mid-write crash) see either the old content or the complete
    new content, never a torn file.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    os.replace(tmp, path)


class CampaignStore:
    """Content-addressed, crash-safe cache of campaign cell results.

    Construct one over a directory and hand it to any sweep
    (``store=`` on every :mod:`repro.sim.experiment` sweep, threaded
    through :func:`repro.sim.parallel.run_many`/``iter_many``): cells
    whose fingerprint is already stored are served from disk without a
    single simulation tick, freshly computed cells are persisted the
    moment they finish, and an interrupted campaign resumes by
    dispatching only its missing cells.

    ``hits`` / ``misses`` / ``puts`` count this instance's traffic —
    pure observation for tests and progress reporting, never behaviour.
    """

    def __init__(self, root: Union[str, Path] = DEFAULT_STORE_DIR) -> None:
        self.root = Path(root)
        self.cells_dir = self.root / "cells"
        self.journals_dir = self.root / "journals"
        self.index_path = self.root / "index.jsonl"
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self._described = False

    # ------------------------------------------------------------ identity
    def fingerprint(self, fn: Callable, kwargs) -> Optional[str]:
        """Fingerprint of one cell, or ``None`` when uncacheable.

        Uncacheable cells (closure policies, live objects) are logged
        once and simply bypass the store — the campaign still runs.
        """
        try:
            return fingerprint_cell(fn, kwargs)
        except Unfingerprintable as exc:
            logger.info("cell not cacheable (%s); computing uncached", exc)
            return None

    # -------------------------------------------------------------- blobs
    def _blob_path(self, fingerprint: str) -> Path:
        return self.cells_dir / fingerprint[:2] / f"{fingerprint}.json"

    def contains(self, fingerprint: str) -> bool:
        """Whether a valid-looking blob exists for this fingerprint."""
        return self._blob_path(fingerprint).is_file()

    def get(self, fingerprint: str) -> Any:
        """The stored result for a fingerprint, or :data:`MISS`.

        A truncated or garbage blob is logged, counted as a miss, and
        left for the recompute's ``put`` to overwrite.
        """
        path = self._blob_path(fingerprint)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.misses += 1
            return MISS
        except (OSError, ValueError) as exc:
            logger.warning(
                "ignoring corrupt store blob %s (%s); recomputing", path, exc
            )
            self.misses += 1
            return MISS
        try:
            if payload["fingerprint"] != fingerprint:
                raise ValueError(
                    f"blob claims fingerprint {payload['fingerprint']!r}"
                )
            if payload["schema"] != SCHEMA_VERSION:
                raise ValueError(f"blob schema {payload['schema']!r}")
            result = decode_result(payload["result"])
        except (KeyError, TypeError, ValueError, Unstorable) as exc:
            logger.warning(
                "ignoring invalid store blob %s (%s); recomputing", path, exc
            )
            self.misses += 1
            return MISS
        self.hits += 1
        return result

    def put(
        self,
        fingerprint: str,
        result: Any,
        fn: Optional[Callable] = None,
        key: Optional[Hashable] = None,
    ) -> bool:
        """Persist one finished cell atomically; ``False`` if unstorable.

        Never raises on content problems: a result outside the
        serialiser's closed set is logged and skipped, and the campaign
        continues uncached for that cell.
        """
        try:
            encoded = encode_result(result)
        except Unstorable as exc:
            logger.warning("not caching cell %r: %s", key, exc)
            return False
        payload = {
            "schema": SCHEMA_VERSION,
            "engine": ENGINE_VERSION,
            "fingerprint": fingerprint,
            "fn": getattr(fn, "__qualname__", None) and (
                f"{fn.__module__}.{fn.__qualname__}"
            ),
            "key": repr(key),
            "result": encoded,
        }
        # A full or read-only disk must degrade the cache, never abort
        # a campaign that already paid for the simulation.
        try:
            atomic_write_text(
                self._blob_path(fingerprint),
                json.dumps(payload, indent=1) + "\n",
            )
            self._append_index(fingerprint, payload["fn"], payload["key"])
            self._describe()
        except OSError as exc:
            logger.warning(
                "store write failed for cell %r (%s); continuing uncached",
                key,
                exc,
            )
            return False
        self.puts += 1
        return True

    # -------------------------------------------------------------- index
    def _append_index(
        self, fingerprint: str, fn: Optional[str], key: str
    ) -> None:
        line = json.dumps(
            {"fingerprint": fingerprint, "fn": fn, "key": key}
        )
        self.index_path.parent.mkdir(parents=True, exist_ok=True)
        # Single buffered write of one line: a crash can tear at most
        # the final line, which readers skip (blobs stay authoritative).
        with open(self.index_path, "a") as handle:
            handle.write(line + "\n")

    def entries(self) -> Iterator[Dict[str, Any]]:
        """Stream the advisory index; torn/garbage lines are skipped."""
        try:
            handle = open(self.index_path)
        except OSError:
            return
        with handle:
            for lineno, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    entry["fingerprint"]  # required field
                except (ValueError, TypeError, KeyError):
                    logger.warning(
                        "skipping corrupt index line %s:%d",
                        self.index_path,
                        lineno,
                    )
                    continue
                yield entry

    def rebuild_index(self) -> int:
        """Regenerate ``index.jsonl`` from the authoritative blobs.

        Returns the number of valid blobs indexed.  Invalid blobs are
        logged and skipped exactly as :meth:`get` would skip them.
        """
        lines: List[str] = []
        for blob in sorted(self.cells_dir.glob("*/*.json")):
            try:
                payload = json.loads(blob.read_text())
                entry = {
                    "fingerprint": payload["fingerprint"],
                    "fn": payload.get("fn"),
                    "key": payload.get("key"),
                }
            except (OSError, ValueError, TypeError, KeyError) as exc:
                logger.warning(
                    "rebuild: skipping corrupt blob %s (%s)", blob, exc
                )
                continue
            lines.append(json.dumps(entry))
        atomic_write_text(
            self.index_path, "".join(line + "\n" for line in lines)
        )
        return len(lines)

    def __len__(self) -> int:
        return sum(1 for _ in self.cells_dir.glob("*/*.json"))

    # ----------------------------------------------------------- journals
    def begin_campaign(
        self, keys: Sequence[Hashable], fingerprints: Sequence[str]
    ) -> CampaignJournal:
        """Record a campaign grid durably *before* dispatching cells.

        Re-running the same grid lands on the same journal file; a
        prior ``"running"`` status means the last attempt was
        interrupted, and the run counter is bumped so the history stays
        visible.  Returns the journal now on disk.
        """
        journal = CampaignJournal.for_grid(keys, fingerprints)
        previous = load_journal(journal.path_in(self.journals_dir))
        if previous is not None and previous.grid == journal.grid:
            journal.runs = previous.runs + 1
            if previous.status != "complete":
                cached = sum(1 for fp in fingerprints if self.contains(fp))
                logger.info(
                    "resuming interrupted campaign %s: %d/%d cells cached",
                    journal.grid[:12],
                    cached,
                    len(journal.cells),
                )
        try:
            write_journal(journal, self.journals_dir)
        except OSError as exc:
            logger.warning(
                "could not persist campaign journal (%s); continuing", exc
            )
        return journal

    def finish_campaign(self, journal: CampaignJournal) -> None:
        """Mark a campaign's journal complete (atomic rewrite)."""
        journal.status = "complete"
        try:
            write_journal(journal, self.journals_dir)
        except OSError as exc:
            logger.warning(
                "could not persist campaign journal (%s); continuing", exc
            )

    # ------------------------------------------------------------- plumbing
    def _describe(self) -> None:
        """Drop an informational ``store.json`` next to the data once."""
        if self._described:
            return
        self._described = True
        marker = self.root / "store.json"
        if not marker.exists():
            atomic_write_text(
                marker,
                json.dumps(
                    {"schema": SCHEMA_VERSION, "engine": ENGINE_VERSION},
                    indent=1,
                )
                + "\n",
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CampaignStore({str(self.root)!r})"


def resolve_store(
    store: Union[None, str, Path, CampaignStore]
) -> Optional[CampaignStore]:
    """Normalise a ``store=`` argument: path-likes open a store, ``None``
    and existing stores pass through."""
    if store is None or isinstance(store, CampaignStore):
        return store
    return CampaignStore(store)


def store_from_env(env: str = STORE_ENV) -> Optional[CampaignStore]:
    """The store named by an environment variable, or ``None`` if unset.

    ``SIBYL_STORE=/path/to/store`` is how the figure benchmarks keep
    repeated runs warm without touching their call sites.
    """
    raw = os.environ.get(env, "").strip()
    if not raw:
        return None
    return CampaignStore(raw)
