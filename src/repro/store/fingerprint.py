"""Content-addressed cell identity: deterministic campaign fingerprints.

A sweep cell is a pure function of its parameters — the same
``(cell function, kwargs)`` pair always simulates the same trajectory
(that determinism is the repo's signature bit-identity guarantee, see
:mod:`repro.sim.parallel`).  The durable store exploits it: a cell's
**fingerprint** is a SHA-256 over the canonicalised cell description,
and a stored result is valid exactly as long as that description — the
cell function's qualified name, every keyword argument, the content
identity of any on-disk trace it names, the store schema version, and
the engine version — is unchanged.

Canonicalisation rules (:func:`canonicalize`): every value maps to
``None``/``True``/``False`` or a **tagged list** whose head names its
type — ``["i", n]`` for ints, ``["f", repr]`` for floats, ``["s", text]``
for strings, ``["l", ...]`` for sequences (lists/tuples unify), ``["d",
[key, value], ...]`` sorted for mappings, ``["fp", ...]`` for objects
exposing a ``fingerprint`` attribute (streaming traces), and ``["msrc",
path, size, mtime_ns]`` for ``"msrc:<path>"`` workload strings — the
same content identity :class:`repro.traces.msrc.StreamingMSRCTrace`
uses, so editing the trace file invalidates every cell that streamed
it.  Tagging *everything* is what makes the encoding injective: ``1``,
``1.0``, ``"1"``, and ``True`` never collide, and no plain value can
forge a tag (a literal list ``["msrc", ...]`` canonicalises to ``["l",
["s", "msrc"], ...]``).  Anything else is **uncacheable** and raises
:class:`Unfingerprintable` — a store must never guess at identity,
because a wrong guess would silently serve a stale result.

Version salts: :data:`SCHEMA_VERSION` (the on-disk blob format) and
:data:`ENGINE_VERSION` (the simulation code, bumped with the package
version) are folded into every fingerprint, so a schema change or an
engine release invalidates old cells by construction — they simply stop
being addressed, no migration pass needed.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Mapping

from .. import __version__

__all__ = [
    "SCHEMA_VERSION",
    "ENGINE_VERSION",
    "Unfingerprintable",
    "canonicalize",
    "fingerprint_cell",
    "fingerprint_grid",
]

#: On-disk blob/index layout version.  Bump when the serialised form
#: changes incompatibly; every old fingerprint then stops matching.
SCHEMA_VERSION = 1

#: Simulation-code version folded into every fingerprint: results from
#: an older engine are never served to a newer one.
ENGINE_VERSION = __version__


class Unfingerprintable(TypeError):
    """A cell parameter has no canonical content identity.

    Raised instead of guessing — serving a cached result under an
    ambiguous key could silently return stale numbers, which is worse
    than not caching at all.  Callers treat the cell as uncacheable.
    """


def _msrc_identity(spec: str) -> list:
    """Content identity of an ``"msrc:<path>"`` workload string.

    Mirrors :attr:`repro.traces.msrc.StreamingMSRCTrace.fingerprint`:
    path plus file size and mtime, so rewriting the capture invalidates
    every cell that streamed it.  A missing file canonicalises to a
    "missing" marker (the cell itself will raise when it runs; the
    fingerprint just must not crash first).
    """
    path = Path(spec[len("msrc:"):])
    try:
        stat = path.stat()
    except OSError:
        return ["msrc", str(path), "missing"]
    return ["msrc", str(path), stat.st_size, stat.st_mtime_ns]


def canonicalize(value: Any) -> Any:
    """Reduce a cell parameter to a canonical JSON-able form.

    Deterministic across processes and runs, and **injective**: every
    value becomes ``None``/``True``/``False`` or a type-tagged list
    (module docstring), so distinct parameters can never share a
    canonical form — a collision here would silently serve one cell's
    stored result for another.  Raises :class:`Unfingerprintable` for
    values with no defined identity.
    """
    if value is None or isinstance(value, bool):
        return value
    if isinstance(value, int):
        return ["i", value]
    if isinstance(value, float):
        # repr round-trips exactly; tag keeps 1.0 distinct from 1.
        return ["f", repr(value)]
    if isinstance(value, str):
        if value.startswith("msrc:"):
            return _msrc_identity(value)
        return ["s", value]
    if isinstance(value, Mapping):
        items = sorted(
            (
                (json.dumps(canonicalize(k), sort_keys=True), canonicalize(v))
                for k, v in value.items()
            ),
            key=lambda kv: kv[0],
        )
        return ["d"] + [[k, v] for k, v in items]
    if isinstance(value, (list, tuple)):
        return ["l"] + [canonicalize(v) for v in value]
    fp = getattr(value, "fingerprint", None)
    if fp is not None and not callable(fp):
        return ["fp", canonicalize(fp)]
    raise Unfingerprintable(
        f"no canonical content identity for {type(value).__name__}: "
        f"{value!r}"
    )


def _fn_name(fn: Callable) -> str:
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname or "<locals>" in qualname:
        raise Unfingerprintable(
            f"cell function {fn!r} is not an addressable module-level "
            "callable"
        )
    return f"{module}.{qualname}"


def fingerprint_cell(fn: Callable, kwargs: Mapping[str, Any]) -> str:
    """SHA-256 hex fingerprint of one sweep cell.

    Folds in the schema and engine versions, the cell function's
    qualified name, and the canonicalised kwargs.  Two cells share a
    fingerprint exactly when they are guaranteed to compute the same
    result.  Raises :class:`Unfingerprintable` when any parameter has
    no content identity (e.g. a closure or a live policy object).
    """
    payload = {
        "schema": SCHEMA_VERSION,
        "engine": ENGINE_VERSION,
        "fn": _fn_name(fn),
        "kwargs": canonicalize(dict(kwargs)),
    }
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def fingerprint_grid(cell_fingerprints) -> str:
    """Identity of a whole campaign grid: hash of its sorted cell set.

    Order-independent, so a resumed campaign that happens to enumerate
    its grid in a different order still lands on the same journal.
    """
    text = json.dumps(sorted(cell_fingerprints))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
