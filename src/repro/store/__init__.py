"""Durable campaign store: content-addressed cell cache + crash-safe resume.

The sweep engines (PR 1–4) made every figure a grid of pure,
deterministically seeded cells; this package makes those cells
**durable**.  Each ``(cell function, kwargs)`` pair — policy lineup,
config, trace identity, seed axis, engine version — hashes to a content
fingerprint (:mod:`repro.store.fingerprint`); finished cells persist as
atomic JSON blobs under a store directory
(:class:`~repro.store.store.CampaignStore`); a campaign journal records
grid membership before dispatch (:mod:`repro.store.journal`).  The
result: a campaign killed at cell 180/200 resumes by computing the
missing 20, and a re-run benchmark with a warm store performs **zero
simulation ticks** while rendering byte-identical reports
(:mod:`repro.store.serialize` round-trips results losslessly).

Wiring: pass ``store=`` to any :mod:`repro.sim.experiment` sweep (or
``--store``/``--resume`` on the CLI, or ``SIBYL_STORE`` for the figure
benchmarks); hits stream through ``on_cell`` exactly like fresh
results.  See ``docs/store.md`` for the full contract.
"""

from .fingerprint import (
    ENGINE_VERSION,
    SCHEMA_VERSION,
    Unfingerprintable,
    canonicalize,
    fingerprint_cell,
    fingerprint_grid,
)
from .journal import CampaignJournal, load_journal, write_journal
from .serialize import Unstorable, decode_result, encode_result
from .store import (
    DEFAULT_STORE_DIR,
    MISS,
    STORE_ENV,
    CampaignStore,
    atomic_write_text,
    resolve_store,
    store_from_env,
)

__all__ = [
    "SCHEMA_VERSION",
    "ENGINE_VERSION",
    "Unfingerprintable",
    "canonicalize",
    "fingerprint_cell",
    "fingerprint_grid",
    "CampaignJournal",
    "load_journal",
    "write_journal",
    "Unstorable",
    "encode_result",
    "decode_result",
    "MISS",
    "DEFAULT_STORE_DIR",
    "STORE_ENV",
    "CampaignStore",
    "resolve_store",
    "store_from_env",
    "atomic_write_text",
]
