"""Plain-text reporting of paper tables and figure series.

The benchmark harness prints the same rows/series the paper plots; the
helpers here render aligned ASCII tables and labelled series so bench
output is directly comparable to the figures.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Union

__all__ = ["format_table", "format_series", "geomean"]

Number = Union[int, float]


def _fmt(value: object, precision: int) -> str:
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    headers: Sequence[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table."""
    if not rows:
        return "(empty table)"
    headers = list(headers) if headers else list(rows[0].keys())
    cells = [
        [_fmt(row.get(h, ""), precision) for h in headers] for row in rows
    ]
    widths = [
        max(len(h), *(len(c[i]) for c in cells)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in cells:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row_cells, widths))
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[object, Number],
    label: str = "value",
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render an x→y series (one figure line) as two aligned columns."""
    rows = [
        {"x": str(x), label: y} for x, y in series.items()
    ]
    return format_table(rows, headers=["x", label], precision=precision, title=title)


def geomean(values: Sequence[float]) -> float:
    """Geometric mean, the conventional summary for normalised latencies."""
    if not values:
        raise ValueError("geomean of empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geomean requires positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
