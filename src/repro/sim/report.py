"""Plain-text and machine-readable reporting of paper tables and series.

The benchmark harness prints the same rows/series the paper plots; the
helpers here render aligned ASCII tables and labelled series so bench
output is directly comparable to the figures.

Cells may be plain numbers **or** banded statistics from a multi-seed
campaign (:class:`repro.sim.campaign.SeededResult` — any object with
``mean``/``ci_lo``/``ci_hi`` attributes): banded cells render as
``mean ±half-width`` of their 95% confidence interval, so the same
``format_table``/``format_series`` calls serve single-seed point
estimates and multi-seed confidence bands.  :func:`to_jsonable` /
:func:`export_json` turn any (possibly banded, arbitrarily nested)
result grid into machine-readable JSON.

Rendering is insensitive to where a cell came from: the durable
campaign store (:mod:`repro.store`) reconstructs cached cells as the
exact objects the sweep produced (same floats, same container types,
same dict order, real ``SeededResult`` bands), so a table or JSON
export over a warm/resumed grid is byte-identical to one over a cold
grid — asserted end-to-end by ``tests/store/``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Iterable, Mapping, Optional, Sequence, Union

__all__ = [
    "format_table",
    "format_series",
    "format_band",
    "to_jsonable",
    "export_json",
    "geomean",
]


def _is_band(value: object) -> bool:
    """Duck-typed banded statistic: mean plus a confidence interval."""
    return (
        hasattr(value, "mean")
        and hasattr(value, "ci_lo")
        and hasattr(value, "ci_hi")
    )


def format_band(stat, precision: int = 3) -> str:
    """Render a banded statistic as ``mean ±half-width`` of its CI.

    The half-width is the larger deviation of the two interval ends
    from the mean (bootstrap intervals need not be symmetric), so the
    printed band always covers the actual interval.
    """
    half = max(stat.ci_hi - stat.mean, stat.mean - stat.ci_lo)
    return f"{stat.mean:.{precision}f} ±{half:.{precision}f}"


def _fmt(value: object, precision: int) -> str:
    if _is_band(value):
        return format_band(value, precision)
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    headers: Sequence[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render dict rows as an aligned ASCII table.

    Cells may be plain numbers, strings, or banded statistics (see
    :func:`format_band`); mixed columns align on the rendered text.
    """
    if not rows:
        return "(empty table)"
    headers = list(headers) if headers else list(rows[0].keys())
    cells = [
        [_fmt(row.get(h, ""), precision) for h in headers] for row in rows
    ]
    widths = [
        max(len(h), *(len(c[i]) for c in cells)) for i, h in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row_cells in cells:
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(row_cells, widths))
        )
    return "\n".join(lines)


def format_series(
    series: Mapping[object, object],
    label: str = "value",
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render an x→y series (one figure line) as two aligned columns.

    ``y`` values may be plain numbers or banded statistics — a
    multi-seed sweep's series renders with its confidence band inline.
    """
    rows = [
        {"x": str(x), label: y} for x, y in series.items()
    ]
    return format_table(rows, headers=["x", label], precision=precision, title=title)


def to_jsonable(obj):
    """Recursively convert a result grid into JSON-serialisable data.

    Banded statistics become ``{"mean", "std", "min", "max", "ci95":
    [lo, hi], "n", "values"}`` dicts; mappings keep their (stringified)
    keys; sequences become lists; everything else passes through.  The
    inverse direction is not needed — the JSON is an export format for
    plotting/CI tooling, not a round-trip serialisation.
    """
    if _is_band(obj):
        out = {
            "mean": obj.mean,
            "std": getattr(obj, "std", None),
            "min": getattr(obj, "min", None),
            "max": getattr(obj, "max", None),
            "ci95": [obj.ci_lo, obj.ci_hi],
        }
        values = getattr(obj, "values", None)
        if values is not None:
            out["n"] = len(values)
            out["values"] = [float(v) for v in values]
        seeds = getattr(obj, "seeds", None)
        if seeds is not None:
            out["seeds"] = [int(s) for s in seeds]
        return out
    if isinstance(obj, Mapping):
        return {str(k): to_jsonable(v) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [to_jsonable(v) for v in obj]
    if hasattr(obj, "item") and callable(obj.item) and not isinstance(obj, str):
        return obj.item()  # numpy scalar
    return obj


def export_json(
    grid, path: Optional[Union[str, Path]] = None, indent: int = 2
) -> str:
    """Serialise a (possibly banded) result grid as JSON text.

    Returns the JSON string; when ``path`` is given the text is also
    written there (with a trailing newline), which is how benchmarks
    persist machine-readable tables next to their ASCII ones.
    """
    text = json.dumps(to_jsonable(grid), indent=indent)
    if path is not None:
        Path(path).write_text(text + "\n")
    return text


def geomean(values: Iterable[float]) -> float:
    """Geometric mean, the conventional summary for normalised latencies.

    Computed in log space, so long sequences of large or tiny values
    cannot overflow/underflow the running product into ``inf``/``0.0``
    garbage.  Empty input and non-positive values raise ``ValueError``
    (naming the offending value) — a geometric mean is undefined there,
    and silently returning something would poison a summary row.
    """
    values = [float(v) for v in values]
    if not values:
        raise ValueError("geomean of empty sequence")
    for v in values:
        if not v > 0:  # catches non-positives and NaN in one test
            raise ValueError(f"geomean requires positive values, got {v!r}")
    if len(values) == 1:
        return values[0]
    return math.exp(math.fsum(map(math.log, values)) / len(values))
