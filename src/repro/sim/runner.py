"""Policy-over-trace simulation runner.

This is the harness's core loop (Fig. 6 driven end-to-end): build an
HSS for a named configuration, size the fast device as a fraction of
the workload's working set (10% by default, §3), then for every request
ask the policy for a placement, serve it, and hand the outcome back to
the policy.

All paper results are *normalised to Fast-Only*; ``run_normalized``
runs both the policy and the Fast-Only upper bound on identical fresh
systems and reports the ratios.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..baselines.base import PlacementPolicy
from ..baselines.extremes import FastOnlyPolicy
from ..core.explain import PlacementProfile, profile_from_stats
from ..hss.devices import make_devices
from ..hss.request import Request
from ..hss.system import HybridStorageSystem
from ..traces.stats import working_set_pages

__all__ = ["RunResult", "build_hss", "run_policy", "run_normalized"]

#: The paper's default capacity restrictions: dual-HSS fast device at
#: 10% of the working set (§3); tri-HSS H at 5% and M at 10% (§8.7).
DEFAULT_DUAL_FRACTIONS = (0.10,)
DEFAULT_TRI_FRACTIONS = (0.05, 0.10)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (policy, trace, configuration) simulation."""

    policy: str
    config: str
    n_requests: int
    avg_latency_s: float
    iops: float
    total_latency_s: float
    eviction_fraction: float
    eviction_time_s: float
    profile: PlacementProfile

    def normalized_latency(self, reference: "RunResult") -> float:
        """Average latency relative to a reference run (e.g. Fast-Only)."""
        if reference.avg_latency_s <= 0:
            raise ValueError("reference run has zero latency")
        return self.avg_latency_s / reference.avg_latency_s

    def normalized_iops(self, reference: "RunResult") -> float:
        if reference.iops <= 0:
            raise ValueError("reference run has zero IOPS")
        return self.iops / reference.iops


def build_hss(
    config: str,
    trace: Sequence[Request],
    capacity_fractions: Optional[Sequence[float]] = None,
    unbounded: bool = False,
) -> HybridStorageSystem:
    """Construct an HSS for a ``&``-joined device config (e.g. ``"H&M"``).

    ``capacity_fractions`` sizes each non-last device as a fraction of
    the trace's working set; the last device is always unbounded.  With
    ``unbounded=True`` every device is unbounded (used for Fast-Only).
    """
    devices = make_devices(config)
    if unbounded:
        capacities: List[Optional[int]] = [None] * len(devices)
    else:
        if capacity_fractions is None:
            capacity_fractions = (
                DEFAULT_DUAL_FRACTIONS
                if len(devices) == 2
                else DEFAULT_TRI_FRACTIONS
            )
        if len(capacity_fractions) != len(devices) - 1:
            raise ValueError(
                f"need {len(devices) - 1} capacity fractions for {config!r}, "
                f"got {len(capacity_fractions)}"
            )
        wss = working_set_pages(list(trace))
        capacities = [
            max(1, int(frac * wss)) for frac in capacity_fractions
        ]
        capacities.append(None)
    return HybridStorageSystem(devices, capacities)


def run_policy(
    policy: PlacementPolicy,
    trace: Sequence[Request],
    config: str = "H&M",
    capacity_fractions: Optional[Sequence[float]] = None,
    hss: Optional[HybridStorageSystem] = None,
    max_requests: Optional[int] = None,
    warmup_fraction: float = 0.0,
) -> RunResult:
    """Simulate ``policy`` over ``trace`` on a fresh HSS.

    Fast-Only runs get an unbounded system automatically (its definition
    is "all data resides in the fast storage", §7).

    ``warmup_fraction`` excludes the first part of the trace from the
    reported metrics (every request is still served and learned from).
    The paper's traces are orders of magnitude longer than the synthetic
    benches here, so Sibyl's online-adaptation transient amortises away
    there; measuring the steady-state window — identically for every
    policy — is the equivalent at bench scale.
    """
    trace = list(trace)
    if max_requests is not None:
        trace = trace[:max_requests]
    if not trace:
        raise ValueError("empty trace")
    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    if hss is None:
        unbounded = getattr(policy, "requires_unbounded_fast", False)
        hss = build_hss(
            config, trace, capacity_fractions=capacity_fractions,
            unbounded=unbounded,
        )
    policy.reset()
    policy.attach(hss)
    policy.prepare(trace)
    warmup_end = int(len(trace) * warmup_fraction)
    # Closed-loop replay: a request never issues before the previous
    # one completed, matching trace replay on a real block device and
    # preventing unbounded open-loop queue build-up on slow devices.
    completion_s = 0.0
    for i, request in enumerate(trace):
        if i == warmup_end and i > 0:
            hss.stats.reset(hss.n_devices)
            for dev in hss.devices:
                dev.stats.reset()
        action = policy.place(request)
        now = max(request.timestamp, completion_s)
        result = hss.serve(request, action, now=now)
        completion_s = now + result.latency_s
        policy.feedback(request, action, result)
    stats = hss.stats
    return RunResult(
        policy=policy.name,
        config=config,
        n_requests=stats.requests,
        avg_latency_s=stats.avg_latency_s,
        iops=hss.throughput_iops(),
        total_latency_s=stats.total_latency_s,
        eviction_fraction=stats.eviction_fraction,
        eviction_time_s=stats.eviction_time_s,
        profile=profile_from_stats(stats),
    )


def run_normalized(
    policies: Sequence[PlacementPolicy],
    trace: Sequence[Request],
    config: str = "H&M",
    capacity_fractions: Optional[Sequence[float]] = None,
    max_requests: Optional[int] = None,
    warmup_fraction: float = 0.0,
) -> Dict[str, Dict[str, float]]:
    """Run policies plus the Fast-Only reference; return normalised metrics.

    Returns ``{policy_name: {"latency": ..., "iops": ...,
    "eviction_fraction": ..., "fast_preference": ...}}`` with latency and
    IOPS normalised to Fast-Only, the paper's universal baseline.
    """
    reference = run_policy(
        FastOnlyPolicy(),
        trace,
        config=config,
        max_requests=max_requests,
        warmup_fraction=warmup_fraction,
    )
    out: Dict[str, Dict[str, float]] = {
        "Fast-Only": {
            "latency": 1.0,
            "iops": 1.0,
            "eviction_fraction": reference.eviction_fraction,
            "fast_preference": 1.0,
            "avg_latency_s": reference.avg_latency_s,
            # Raw (unnormalised) reference throughput, kept so callers
            # adding extra policies later can normalise against it.
            "raw_iops": reference.iops,
        }
    }
    for policy in policies:
        result = run_policy(
            policy,
            trace,
            config=config,
            capacity_fractions=capacity_fractions,
            max_requests=max_requests,
            warmup_fraction=warmup_fraction,
        )
        out[result.policy] = {
            "latency": result.normalized_latency(reference),
            "iops": result.normalized_iops(reference),
            "eviction_fraction": result.eviction_fraction,
            "fast_preference": result.profile.fast_preference,
            "avg_latency_s": result.avg_latency_s,
        }
    return out
