"""Policy-over-trace simulation runner.

This is the harness's core loop (Fig. 6 driven end-to-end): build an
HSS for a named configuration, size the fast device as a fraction of
the workload's working set (10% by default, §3), then for every request
ask the policy for a placement, serve it, and hand the outcome back to
the policy.

The loop body lives in :class:`PolicyRun`, a *resumable* per-request
stepper: ``run_policy`` drives one run to completion, while the
multi-lane engine (:mod:`repro.sim.lanes`) advances many ``PolicyRun``
instances in lockstep — each lane executes exactly the code below, so a
lane's result is bit-identical to the serial one.

All paper results are *normalised to Fast-Only*; ``run_normalized``
runs both the policy and the Fast-Only upper bound on identical fresh
systems and reports the ratios.  The Fast-Only reference for a given
(trace, config, window) is cached per process, so sweep campaigns that
share a reference cell (e.g. every point of a capacity sweep) simulate
it once instead of once per point.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..baselines.base import PlacementPolicy
from ..baselines.extremes import FastOnlyPolicy
from ..core.explain import PlacementProfile, profile_from_stats
from ..hss.devices import make_devices
from ..hss.request import Request
from ..hss.system import HybridStorageSystem
from ..traces.stats import working_set_pages

__all__ = [
    "RunResult",
    "PolicyRun",
    "LANE_DONE",
    "build_hss",
    "run_policy",
    "run_reference",
    "run_normalized",
    "reference_row",
    "normalized_row",
    "clear_reference_cache",
]

#: Sentinel returned by :meth:`PolicyRun.step_begin` once the lane's
#: trace is exhausted (distinct from None = "no inference needed").
LANE_DONE = object()

#: The paper's default capacity restrictions: dual-HSS fast device at
#: 10% of the working set (§3); tri-HSS H at 5% and M at 10% (§8.7).
DEFAULT_DUAL_FRACTIONS = (0.10,)
DEFAULT_TRI_FRACTIONS = (0.05, 0.10)


@dataclass(frozen=True)
class RunResult:
    """Outcome of one (policy, trace, configuration) simulation."""

    policy: str
    config: str
    n_requests: int
    avg_latency_s: float
    iops: float
    total_latency_s: float
    eviction_fraction: float
    eviction_time_s: float
    profile: PlacementProfile

    def normalized_latency(self, reference: "RunResult") -> float:
        """Average latency relative to a reference run (e.g. Fast-Only).

        A degenerate reference (zero latency — e.g. an empty measurement
        window on a very short trace) yields ``inf`` instead of raising,
        so sweep campaigns survive pathological cells.
        """
        if reference.avg_latency_s <= 0:
            return float("inf")
        return self.avg_latency_s / reference.avg_latency_s

    def normalized_iops(self, reference: "RunResult") -> float:
        """IOPS relative to a reference run; ``0.0`` on a degenerate
        (zero-IOPS) reference instead of raising."""
        if reference.iops <= 0:
            return 0.0
        return self.iops / reference.iops


def build_hss(
    config: str,
    trace: Iterable[Request],
    capacity_fractions: Optional[Sequence[float]] = None,
    unbounded: bool = False,
) -> HybridStorageSystem:
    """Construct an HSS for a ``&``-joined device config (e.g. ``"H&M"``).

    ``capacity_fractions`` sizes each non-last device as a fraction of
    the trace's working set; the last device is always unbounded.  With
    ``unbounded=True`` every device is unbounded (used for Fast-Only).

    ``trace`` may be any iterable (including a re-iterable streaming
    source); sizing consumes one pass over it.
    """
    devices = make_devices(config)
    if unbounded:
        capacities: List[Optional[int]] = [None] * len(devices)
    else:
        if capacity_fractions is None:
            capacity_fractions = (
                DEFAULT_DUAL_FRACTIONS
                if len(devices) == 2
                else DEFAULT_TRI_FRACTIONS
            )
        if len(capacity_fractions) != len(devices) - 1:
            raise ValueError(
                f"need {len(devices) - 1} capacity fractions for {config!r}, "
                f"got {len(capacity_fractions)}"
            )
        wss = working_set_pages(trace)
        capacities = [
            max(1, int(frac * wss)) for frac in capacity_fractions
        ]
        capacities.append(None)
    return HybridStorageSystem(devices, capacities)


class PolicyRun:
    """One resumable (policy, trace) simulation, advanced a request at
    a time.

    ``step()`` executes exactly one loop iteration of the classic serial
    replay: warmup-window reset, ``policy.place``, closed-loop serve,
    ``policy.feedback``.  The multi-lane engine instead drives the split
    pair ``step_begin()`` / ``step_finish(action)`` for RL lanes so it
    can batch the network forward across lanes; the two paths execute
    the same statements in the same order, which is what makes lanes
    bit-identical to serial runs.

    ``trace`` may be a sequence, a sized re-iterable streaming source
    (e.g. :class:`repro.traces.msrc.StreamingMSRCTrace` — requests are
    then consumed chunk-by-chunk without materialising the full list),
    or any iterator (materialised on construction).
    """

    def __init__(
        self,
        policy: PlacementPolicy,
        trace: Union[Sequence[Request], Iterable[Request]],
        config: str = "H&M",
        capacity_fractions: Optional[Sequence[float]] = None,
        hss: Optional[HybridStorageSystem] = None,
        max_requests: Optional[int] = None,
        warmup_fraction: float = 0.0,
    ) -> None:
        if isinstance(trace, (list, tuple)):
            source: Union[Sequence[Request], Iterable[Request]] = trace
        elif hasattr(trace, "__len__") and hasattr(trace, "__iter__"):
            source = trace  # sized, re-iterable streaming source
        else:
            source = list(trace)  # plain iterator: materialise once
        if max_requests is not None:
            # Truncation needs a concrete prefix (policies with future
            # knowledge must see exactly the truncated trace).
            if isinstance(source, (list, tuple)):
                source = list(source[:max_requests])
            else:
                source = list(islice(iter(source), max_requests))
        n_total = len(source)  # type: ignore[arg-type]
        if n_total == 0:
            raise ValueError("empty trace")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ValueError("warmup_fraction must be in [0, 1)")
        if hss is None:
            unbounded = getattr(policy, "requires_unbounded_fast", False)
            hss = build_hss(
                config, source, capacity_fractions=capacity_fractions,
                unbounded=unbounded,
            )
        self.policy = policy
        self.config = config
        self.hss = hss
        self.n_total = n_total
        policy.reset()
        policy.attach(hss)
        policy.prepare(source)
        self._iter = iter(source)
        self._index = 0
        self._warmup_end = int(n_total * warmup_fraction)
        # Closed-loop replay: a request never issues before the previous
        # one completed, matching trace replay on a real block device and
        # preventing unbounded open-loop queue build-up on slow devices.
        self._completion_s = 0.0
        self._request: Optional[Request] = None
        self.finished = False
        # Bound methods hoisted out of the per-request loop.
        self._place = policy.place
        self._feedback = policy.feedback
        self._serve = hss.serve

    # ------------------------------------------------------------ stepping
    def _fetch(self) -> Optional[Request]:
        request = next(self._iter, None)
        if request is None:
            self.finished = True
            return None
        i = self._index
        if i == self._warmup_end and i > 0:
            hss = self.hss
            hss.stats.reset(hss.n_devices)
            for dev in hss.devices:
                dev.stats.reset()
        return request

    def _complete(self, request: Request, action: int) -> None:
        """The closed-loop tail of one iteration: serve at the clamped
        issue time, record the completion horizon, feed back, advance.

        The single home of these statements — ``step``, ``step_begin``'s
        inline path, and ``step_finish`` all delegate here, which is
        what keeps the serial and lane-engine paths statement-for-
        statement identical (the bit-identity contract).
        """
        now = request.timestamp
        if now < self._completion_s:
            now = self._completion_s
        result = self._serve(request, action, now=now)
        self._completion_s = now + result.latency_s
        self._feedback(request, action, result)
        self._index += 1

    def step(self) -> bool:
        """Advance one request; return False once the trace is exhausted."""
        request = self._fetch()
        if request is None:
            return False
        self._complete(request, self._place(request))
        return True

    def step_begin(self):
        """Lane-engine first half: fetch a request and run the policy's
        pre-inference work (:meth:`repro.core.agent.SibylAgent.place_begin`).

        Returns :data:`LANE_DONE` once the trace is exhausted; ``None``
        when the lane needed no network inference this tick (exploration
        or action-memo hit — the step then **completed inline**, serve
        and feedback included); else the observation vector to include
        in the fused forward, with :meth:`step_finish` still owed.
        """
        request = self._fetch()
        if request is None:
            return LANE_DONE
        # The commit for this begin intentionally lives in
        # ``step_finish``: the lane engine owns the fused forward
        # between the two halves, so no single function closes the
        # pair.  Reviewed 2026-08: every step_begin is followed by
        # step_finish (or completes inline below).
        obs = self.policy.place_begin(request)  # sibyl: ignore[SBL-HOOK]
        if obs is not None:
            self._request = request
            return obs
        # Decision already made: finish the step without a second
        # engine round-trip (the overwhelmingly common steady-state
        # path once the greedy-action memo is warm).
        self._complete(request, self.policy.place_commit(None))
        return None

    def step_finish(self, greedy_action: Optional[int] = None) -> None:
        """Lane-engine second half: commit the action (scattered from
        the fused forward) and serve + feed back exactly as ``step``."""
        request = self._request
        self._request = None
        self._complete(request, self.policy.place_commit(greedy_action))

    # -------------------------------------------------------------- result
    def result(self) -> RunResult:
        stats = self.hss.stats
        return RunResult(
            policy=self.policy.name,
            config=self.config,
            n_requests=stats.requests,
            avg_latency_s=stats.avg_latency_s,
            iops=self.hss.throughput_iops(),
            total_latency_s=stats.total_latency_s,
            eviction_fraction=stats.eviction_fraction,
            eviction_time_s=stats.eviction_time_s,
            profile=profile_from_stats(stats),
        )


def run_policy(
    policy: PlacementPolicy,
    trace: Union[Sequence[Request], Iterable[Request]],
    config: str = "H&M",
    capacity_fractions: Optional[Sequence[float]] = None,
    hss: Optional[HybridStorageSystem] = None,
    max_requests: Optional[int] = None,
    warmup_fraction: float = 0.0,
) -> RunResult:
    """Simulate ``policy`` over ``trace`` on a fresh HSS.

    Fast-Only runs get an unbounded system automatically (its definition
    is "all data resides in the fast storage", §7).

    ``warmup_fraction`` excludes the first part of the trace from the
    reported metrics (every request is still served and learned from).
    The paper's traces are orders of magnitude longer than the synthetic
    benches here, so Sibyl's online-adaptation transient amortises away
    there; measuring the steady-state window — identically for every
    policy — is the equivalent at bench scale.
    """
    run = PolicyRun(
        policy,
        trace,
        config=config,
        capacity_fractions=capacity_fractions,
        hss=hss,
        max_requests=max_requests,
        warmup_fraction=warmup_fraction,
    )
    step = run.step
    while step():
        pass
    return run.result()


# ---------------------------------------------------------------------------
# Fast-Only reference caching.
# ---------------------------------------------------------------------------

#: Per-process memo of Fast-Only reference runs, keyed by
#: (trace fingerprint, config, max_requests, warmup_fraction).
_REFERENCE_CACHE: "OrderedDict[tuple, RunResult]" = OrderedDict()
_REFERENCE_CACHE_LIMIT = 8


def _trace_fingerprint(trace) -> Optional[tuple]:
    """Value-based identity of a trace, or None when uncacheable.

    Streaming sources may expose a cheap ``fingerprint`` attribute
    (e.g. path + file metadata); concrete request lists hash their
    contents (requests are frozen dataclasses).
    """
    fp = getattr(trace, "fingerprint", None)
    if fp is not None:
        return ("attr", fp)
    if isinstance(trace, (list, tuple)):
        if not trace:
            return ("hash", 0)
        # Full-content hash plus the endpoint requests themselves: a
        # stale hit would need a 64-bit hash collision between two
        # same-length traces that also share both endpoints.
        return ("hash", len(trace), hash(tuple(trace)), trace[0], trace[-1])
    return None


def run_reference(
    trace,
    config: str = "H&M",
    max_requests: Optional[int] = None,
    warmup_fraction: float = 0.0,
) -> RunResult:
    """The Fast-Only reference run for a (trace, config, window) cell.

    Deterministic (Fast-Only is stateless and the replay is seeded by
    the trace alone), so the result is memoised per process: a sweep
    whose points share the reference cell — every capacity fraction of
    a capacity sweep, every point of a hyper-parameter sweep — pays for
    one reference simulation instead of one per point.
    """
    fingerprint = _trace_fingerprint(trace)
    key = None
    if fingerprint is not None:
        key = (fingerprint, config, max_requests, warmup_fraction)
        hit = _REFERENCE_CACHE.get(key)
        if hit is not None:
            _REFERENCE_CACHE.move_to_end(key)
            return hit
    result = run_policy(
        FastOnlyPolicy(),
        trace,
        config=config,
        max_requests=max_requests,
        warmup_fraction=warmup_fraction,
    )
    if key is not None:
        _REFERENCE_CACHE[key] = result
        while len(_REFERENCE_CACHE) > _REFERENCE_CACHE_LIMIT:
            _REFERENCE_CACHE.popitem(last=False)
    return result


def clear_reference_cache() -> None:
    """Drop all memoised Fast-Only reference runs (mainly for tests)."""
    _REFERENCE_CACHE.clear()


def reference_row(reference: RunResult) -> Dict[str, float]:
    """The Fast-Only row of a normalised result dict.

    Everything is relative to Fast-Only (the paper's universal
    baseline), so its own normalised metrics are 1.0 by construction;
    the raw reference latency and IOPS ride along so callers adding
    extra policies later (e.g. the Oracle row of a sweep cell, or a
    multi-seed campaign) can normalise against the same reference.
    """
    return {
        "latency": 1.0,
        "iops": 1.0,
        "eviction_fraction": reference.eviction_fraction,
        "fast_preference": 1.0,
        "avg_latency_s": reference.avg_latency_s,
        # Raw (unnormalised) reference throughput, kept so callers
        # adding extra policies later can normalise against it.
        "raw_iops": reference.iops,
    }


def normalized_row(result: RunResult, reference: RunResult) -> Dict[str, float]:
    """One policy's metrics dict, latency/IOPS normalised to ``reference``.

    The single home of the metric projection shared by
    :func:`run_normalized` and the multi-seed campaign layer
    (:mod:`repro.sim.campaign`) — one implementation is what keeps a
    campaign's per-seed rows bit-identical to single-seed sweep cells.
    """
    return {
        "latency": result.normalized_latency(reference),
        "iops": result.normalized_iops(reference),
        "eviction_fraction": result.eviction_fraction,
        "fast_preference": result.profile.fast_preference,
        "avg_latency_s": result.avg_latency_s,
    }


def run_normalized(
    policies: Sequence[PlacementPolicy],
    trace: Union[Sequence[Request], Iterable[Request]],
    config: str = "H&M",
    capacity_fractions: Optional[Sequence[float]] = None,
    max_requests: Optional[int] = None,
    warmup_fraction: float = 0.0,
) -> Dict[str, Dict[str, float]]:
    """Run policies plus the Fast-Only reference; return normalised metrics.

    Returns ``{policy_name: {"latency": ..., "iops": ...,
    "eviction_fraction": ..., "fast_preference": ...}}`` with latency and
    IOPS normalised to Fast-Only, the paper's universal baseline.

    The policy runs advance through the multi-lane engine
    (:func:`repro.sim.lanes.run_lanes`): every policy in the lineup steps
    in lockstep over the trace and RL lanes share one fused network
    forward per tick.  Lanes are bit-identical to serial ``run_policy``
    calls, so this changes wall-clock time only.
    """
    from .lanes import LaneSpec, run_lanes  # local import: lanes builds on us

    # A one-shot iterator can feed at most one run; materialise it once
    # here so the reference run and every policy lane see the full trace.
    if not isinstance(trace, (list, tuple)) and not (
        hasattr(trace, "__len__") and hasattr(trace, "__iter__")
    ):
        trace = list(trace)
    reference = run_reference(
        trace,
        config=config,
        max_requests=max_requests,
        warmup_fraction=warmup_fraction,
    )
    out: Dict[str, Dict[str, float]] = {"Fast-Only": reference_row(reference)}
    results = run_lanes(
        [
            LaneSpec(
                policy=policy,
                trace=trace,
                config=config,
                capacity_fractions=capacity_fractions,
                max_requests=max_requests,
                warmup_fraction=warmup_fraction,
            )
            for policy in policies
        ]
    )
    for result in results:
        out[result.policy] = normalized_row(result, reference)
    return out
