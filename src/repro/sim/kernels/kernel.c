/* Compiled tick engine: a C transliteration of engine_numpy.run_one_numpy.
 *
 * Bit-identity contract (same as the NumPy reference):
 *   - Python's min(a, b) / max(a, b) become the exact conditionals the
 *     builtins evaluate (`b if b < a else a`), preserving ties.
 *   - Float expressions keep the source's association; constant-only
 *     subexpressions (seek_span, tr_unit, gc_over_denom) are seeded
 *     pre-reduced by the Python caller, exactly as engine_numpy does.
 *   - math.log2 is libm log2, so feature binning matches bit-for-bit.
 *   - The agent's PCG64 stream is replicated natively (including
 *     numpy's buffered 32-bit Lemire rejection for `integers`), and its
 *     state round-trips through `Generator.bit_generator.state`.
 *   - Replay dedup keys use the same 51-byte serialisation, with an
 *     exact double->half (round-to-nearest-even) conversion.
 *
 * The kernel owns no Python objects.  The caller (engine_c.py) passes
 * one table of raw array pointers; everything the serial path mutates
 * lives in those arrays and is written back to the live objects at the
 * end.  Work the kernel cannot do natively suspends the run instead:
 * sib_run() returns NEED_INFERENCE (action-memo miss -> the caller runs
 * the NN forward) or TRAIN_GATE (a training event is due -> the caller
 * drives train_begin/train_commit) and is re-entered where it left off.
 */

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ------------------------------------------------------------------ ABI */
/* Pointer-table indices; engine_c.py mirrors these constants. */
enum {
    P_CTRL_I, P_CTRL_D, P_TS, P_OP, P_DPAGE, P_SIZE, P_UNIQ, P_LOC,
    P_LRU_PREV, P_LRU_NEXT, P_CNT, P_LAST, P_MAXIMA, P_OBS_MAIL,
    P_PEND_OBS, P_PEND_KEY, P_ACTION_COUNTS, P_RNG,
    P_RB_OBS, P_RB_NOBS, P_RB_ACT, P_RB_REW, P_RB_MULT, P_RB_KEYS,
    P_RB_HASH, P_RB_FPREV, P_RB_FNEXT, P_RB_FREE, P_RB_ORDER,
    P_MEMO_KEYS, P_MEMO_OBS, P_MEMO_ACT, P_MEMO_HASH,
    P_DEV_D, P_DEV_I, P_HSS_I, P_HSS_D, P_VICTIMS, P_VSORT,
    P_NPTR
};

/* ctrl_i slots */
enum {
    CI_STATUS, CI_I, CI_RESUMED, CI_NTOTAL, CI_WARMUP, CI_SEEN,
    CI_TRAIN_INT, CI_BATCH, CI_INIT_RAND, CI_CLOCK, CI_CAP0, CI_SLACK,
    CI_RES0, CI_RES1, CI_HEAD0, CI_TAIL0, CI_HEAD1, CI_TAIL1,
    CI_PENDING, CI_PEND_ACTION,
    CI_RB_CAP, CI_RB_NENT, CI_RB_HEAD, CI_RB_TAIL, CI_RB_FREE_N,
    CI_RB_TOMB, CI_RB_HASHCAP, CI_RB_TOTAL, CI_RB_SLOT_HI,
    CI_MEMO_N, CI_MEMO_CAP, CI_MEMO_HASHCAP,
    CI_ACTION, CI_ERR, CI_ORDER_N,
    CI_SIZE_BINS, CI_INTR_BINS, CI_CNT_BINS, CI_CAP_BINS, CI_NDEV,
    CI_LEN
};

/* ctrl_d slots */
enum {
    CD_COMPLETION, CD_REWARD_SUM, CD_EPS, CD_UNIT, CD_EVICT_COEF,
    CD_MAX_REWARD, CD_PEND_REWARD,
    CD_LEN
};

/* per-device f64 block (stride 32) */
enum {
    DD_NEXT_FREE, DD_BUSY, DD_QWAIT, DD_UTIL, DD_GC_TIME,
    DD_ROVER, DD_WOVER, DD_RBW, DD_WBW, DD_BI,
    DD_READ1, DD_GC_THRESH, DD_GC_LAT, DD_GC_DENOM, DD_BUF_LAT,
    DD_TR_UNIT, DD_BUF_OCC, DD_BUF_LAST,
    DD_AVG_ROT, DD_MIN_SEEK, DD_SEEK_SPAN,
};
#define DD_STRIDE 32

/* per-device i64 block (stride 24) */
enum {
    DI_TYPE, DI_READS, DI_WRITES, DI_PR, DI_PW, DI_GC_EVENTS,
    DI_BUFFERED, DI_WSG, DI_HEAD, DI_TARGET, DI_GC_TRIG, DI_BUF_PAGES,
    DI_SEQWIN, DI_TRACKSPAN, DI_CAPPAGES, DI_HAS_UTIL, DI_UTIL_CAP,
};
#define DI_STRIDE 24

/* HSS stats */
enum {
    HI_REQUESTS, HI_READS, HI_WRITES, HI_PROMOTED, HI_DEMOTED,
    HI_EVENTS, HI_EVICTED, HI_PLACE0, HI_PLACE1, HI_LEN
};
enum { HD_TOTAL_LAT, HD_EVICT_TIME, HD_LAST_COMPLETION, HD_LEN };

/* sib_run status codes */
enum { ST_DONE = 0, ST_NEED_INFERENCE = 1, ST_TRAIN_GATE = 2, ST_ERROR = 3 };

typedef struct {
    int64_t *ci;
    double *cd;
    const double *ts;
    const uint8_t *op;
    const int64_t *dpage;
    const int64_t *size;
    const int64_t *uniq;
    int8_t *loc;
    int32_t *lprev, *lnext;
    int64_t *cnt, *last;
    const double *maxima;
    double *obs_mail, *pend_obs;
    uint8_t *pend_key;
    int64_t *action_counts;
    uint64_t *rngst;
    double *rb_obs, *rb_nobs;
    int64_t *rb_act;
    double *rb_rew, *rb_mult;
    uint8_t *rb_keys;
    int32_t *rb_hash, *rb_fprev, *rb_fnext, *rb_free;
    int64_t *rb_order;
    uint8_t *memo_keys;
    double *memo_obs;
    int32_t *memo_act, *memo_hash;
    double *dd;
    int64_t *di;
    int64_t *hi;
    double *hd;
    int32_t *victims, *vsort;
} S;

/* ------------------------------------------------- PCG64 (numpy exact) */
typedef struct {
    __uint128_t state, inc;
    int has_uint32;
    uint32_t uinteger;
} pcg64_t;

static inline uint64_t rotr64(uint64_t v, int rot) {
    return (v >> rot) | (v << ((-rot) & 63));
}

static const __uint128_t PCG_MULT =
    (((__uint128_t)2549297995355413924ULL) << 64) | 4865540595714422341ULL;

static inline uint64_t pcg64_next(pcg64_t *rng) {
    rng->state = rng->state * PCG_MULT + rng->inc;
    return rotr64((uint64_t)(rng->state >> 64) ^ (uint64_t)rng->state,
                  (int)(rng->state >> 122));
}

static inline uint32_t next_uint32(pcg64_t *rng) {
    if (rng->has_uint32) {
        rng->has_uint32 = 0;
        return rng->uinteger;
    }
    uint64_t v = pcg64_next(rng);
    rng->has_uint32 = 1;
    rng->uinteger = (uint32_t)(v >> 32);
    return (uint32_t)v;
}

/* Generator.random(): one 53-bit draw. */
static inline double pcg_random(pcg64_t *rng) {
    return (pcg64_next(rng) >> 11) * (1.0 / 9007199254740992.0);
}

/* Generator.integers(0, n) for int64 dtype with n-1 in [1, UINT32_MAX]:
 * numpy's buffered 32-bit Lemire rejection. */
static inline int64_t pcg_integers(pcg64_t *rng, uint64_t n) {
    uint32_t rng_incl = (uint32_t)(n - 1);
    if (rng_incl == 0)
        return 0;
    const uint32_t rng_excl = rng_incl + 1;
    uint64_t m = ((uint64_t)next_uint32(rng)) * rng_excl;
    uint32_t leftover = (uint32_t)m;
    if (leftover < rng_excl) {
        const uint32_t threshold = ((uint32_t)(UINT32_MAX - rng_incl)) % rng_excl;
        while (leftover < threshold) {
            m = ((uint64_t)next_uint32(rng)) * rng_excl;
            leftover = (uint32_t)m;
        }
    }
    return (int64_t)(m >> 32);
}

/* ------------------------------------------- float64 -> float16 (RN-even)
 * Direct single-rounding conversion, exactly np.float16(double).  The
 * obvious double->float->half path double-rounds; this one matches numpy
 * on every half pattern, every tie midpoint, and the subnormal range. */
static uint16_t f64_to_f16(double x) {
    uint64_t bits;
    memcpy(&bits, &x, 8);
    uint16_t sign = (uint16_t)((bits >> 48) & 0x8000);
    uint64_t abs_ = bits & 0x7FFFFFFFFFFFFFFFULL;
    int exp = (int)(abs_ >> 52);
    uint64_t mant = abs_ & 0xFFFFFFFFFFFFFULL;
    if (exp == 0x7FF) /* inf / nan */
        return mant ? (uint16_t)(sign | 0x7E00) : (uint16_t)(sign | 0x7C00);
    if (abs_ == 0)
        return sign;
    if (exp == 0) /* f64 subnormal: far below the half range */
        return sign;
    int e = exp - 1023;
    if (e >= 16)
        return (uint16_t)(sign | 0x7C00);
    if (e >= -14) { /* candidate normal half */
        uint64_t half_mant = mant >> 42;
        uint64_t rem = mant & ((1ULL << 42) - 1);
        uint64_t round_bit = 1ULL << 41;
        if (rem > round_bit || (rem == round_bit && (half_mant & 1)))
            half_mant++;
        uint32_t out = (uint32_t)(((uint32_t)(e + 15) << 10) + half_mant);
        if (out >= 0x7C00) /* rounded up across the top */
            return (uint16_t)(sign | 0x7C00);
        return (uint16_t)(sign | out);
    }
    if (e < -25) /* below half the smallest subnormal: to zero */
        return sign;
    /* subnormal half: q = round(value * 2^24), RN-even on the remainder */
    uint64_t sig = (1ULL << 52) | mant; /* value = sig * 2^(e-52) */
    int sh = 28 - e;                    /* in [43, 53] */
    uint64_t q = sig >> sh;
    uint64_t rem = sig & ((1ULL << sh) - 1);
    uint64_t half = 1ULL << (sh - 1);
    if (rem > half || (rem == half && (q & 1)))
        q++;
    return (uint16_t)(sign | (uint16_t)q);
}

/* ------------------------------------------------------------- hashing */
static inline uint64_t fnv1a(const uint8_t *b, int len) {
    uint64_t h = 1469598103934665603ULL;
    for (int i = 0; i < len; i++) {
        h ^= b[i];
        h *= 1099511628211ULL;
    }
    return h;
}

/* ------------------------------------------------------ page LRU lists */
static inline void lru_append(S *s, int64_t d, int64_t p) {
    int64_t tail = s->ci[CI_TAIL0 + 2 * d];
    s->lprev[p] = (int32_t)tail;
    s->lnext[p] = -1;
    if (tail >= 0)
        s->lnext[tail] = (int32_t)p;
    else
        s->ci[CI_HEAD0 + 2 * d] = p;
    s->ci[CI_TAIL0 + 2 * d] = p;
    s->ci[CI_RES0 + d]++;
}

static inline void lru_remove(S *s, int64_t d, int64_t p) {
    int32_t pr = s->lprev[p], nx = s->lnext[p];
    if (pr >= 0)
        s->lnext[pr] = nx;
    else
        s->ci[CI_HEAD0 + 2 * d] = nx;
    if (nx >= 0)
        s->lprev[nx] = pr;
    else
        s->ci[CI_TAIL0 + 2 * d] = pr;
    s->ci[CI_RES0 + d]--;
}

static inline void lru_mte(S *s, int64_t d, int64_t p) { /* move_to_end */
    if (s->ci[CI_TAIL0 + 2 * d] == p)
        return;
    lru_remove(s, d, p);
    lru_append(s, d, p);
}

/* -------------------------------------------------------- device model */
static double dev_service(S *s, int d, double start, int64_t page,
                          int64_t n, int is_write) {
    double *dd = s->dd + d * DD_STRIDE;
    int64_t *di = s->di + d * DI_STRIDE;
    if (di[DI_TYPE] == 1) { /* HDD: _point_head + service_time */
        di[DI_TARGET] = page;
        int64_t delta = page - di[DI_HEAD];
        double positioning;
        if (delta >= 0 && delta <= di[DI_SEQWIN]) {
            positioning = 0.0;
        } else {
            int64_t distance = delta < 0 ? -delta : delta;
            if (distance <= di[DI_TRACKSPAN]) {
                positioning = dd[DD_AVG_ROT];
            } else {
                double frac = (double)distance / (double)di[DI_CAPPAGES];
                frac = frac < 1.0 ? frac : 1.0;
                double seek = dd[DD_MIN_SEEK] + dd[DD_SEEK_SPAN] * sqrt(frac);
                positioning = seek + dd[DD_AVG_ROT];
            }
        }
        di[DI_HEAD] = page + n;
        double overhead = is_write ? dd[DD_WOVER] : dd[DD_ROVER];
        double bw = is_write ? dd[DD_WBW] : dd[DD_RBW];
        return positioning + overhead + (double)(n * 4096) / bw;
    }
    /* SSD */
    if (!is_write) {
        if (n == 1)
            return dd[DD_READ1];
        return dd[DD_ROVER] + (double)(n * 4096) / dd[DD_RBW];
    }
    /* SSD write: buffer drain + GC debt + buffered-vs-direct */
    double elapsed = start - dd[DD_BUF_LAST];
    if (elapsed > 0.0) {
        double occ = dd[DD_BUF_OCC] - elapsed * dd[DD_WBW] / 4096.0;
        dd[DD_BUF_OCC] = occ > 0.0 ? occ : 0.0;
    }
    dd[DD_BUF_LAST] = start;
    double stall;
    if (dd[DD_UTIL] < dd[DD_GC_THRESH]) {
        di[DI_WSG] = 0;
        stall = 0.0;
    } else {
        int64_t writes = di[DI_WSG] + n;
        if (writes < di[DI_GC_TRIG]) {
            di[DI_WSG] = writes;
            stall = 0.0;
        } else {
            int64_t cycles = writes / di[DI_GC_TRIG];
            di[DI_WSG] = writes % di[DI_GC_TRIG];
            double over = (dd[DD_UTIL] - dd[DD_GC_THRESH]) / dd[DD_GC_DENOM];
            stall = (double)cycles * dd[DD_GC_LAT] * (1.0 + 3.0 * over);
            di[DI_GC_EVENTS] += cycles;
            dd[DD_GC_TIME] += stall;
        }
    }
    double occ = dd[DD_BUF_OCC];
    double base;
    if (di[DI_BUF_PAGES] > 0 && occ + (double)n <= (double)di[DI_BUF_PAGES]) {
        dd[DD_BUF_OCC] = occ + (double)n;
        di[DI_BUFFERED]++;
        base = dd[DD_BUF_LAT] + (double)n * dd[DD_TR_UNIT] * 0.25;
    } else {
        base = dd[DD_WOVER] + (double)(n * 4096) / dd[DD_WBW];
    }
    return base + stall;
}

/* StorageDevice.access */
static double fg_access(S *s, int d, double now, int64_t page, int64_t n,
                        int is_write) {
    double *dd = s->dd + d * DD_STRIDE;
    int64_t *di = s->di + d * DI_STRIDE;
    double nf = dd[DD_NEXT_FREE];
    double start = nf > now ? nf : now;
    double service = dev_service(s, d, start, page, n, is_write);
    dd[DD_NEXT_FREE] = start + service;
    dd[DD_QWAIT] += start - now;
    dd[DD_BUSY] += service;
    if (is_write) {
        di[DI_WRITES]++;
        di[DI_PW] += n;
    } else {
        di[DI_READS]++;
        di[DI_PR] += n;
    }
    return (start - now) + service;
}

/* StorageDevice.background_access */
static double bg_access(S *s, int d, double now, int64_t page, int64_t n,
                        int is_write) {
    double *dd = s->dd + d * DD_STRIDE;
    int64_t *di = s->di + d * DI_STRIDE;
    double nf = dd[DD_NEXT_FREE];
    double start = nf > now ? nf : now;
    double service = dev_service(s, d, start, page, n, is_write);
    dd[DD_NEXT_FREE] = start + dd[DD_BI] * service;
    dd[DD_BUSY] += service;
    if (is_write)
        di[DI_PW] += n;
    else
        di[DI_PR] += n;
    return service;
}

/* HybridStorageSystem._update_utilization */
static inline void upd_util(S *s, int64_t d) {
    int64_t *di = s->di + d * DI_STRIDE;
    if (di[DI_HAS_UTIL]) {
        double v = (double)s->ci[CI_RES0 + d] / (double)di[DI_UTIL_CAP];
        s->dd[d * DD_STRIDE + DD_UTIL] = v < 1.0 ? v : 1.0;
    }
}

/* --------------------------------------------------------- evictions */
/* HybridStorageSystem._evict(0, n, now): two devices, dest unbounded. */
static double do_evict(S *s, int64_t n, double now) {
    int64_t nv = 0;
    for (int64_t p = s->ci[CI_HEAD0]; p >= 0 && nv < n; p = s->lnext[p])
        s->victims[nv++] = (int32_t)p;
    if (nv == 0)
        return 0.0;
    double read_time = 0.0, write_time = 0.0;
    if (nv == 1) {
        int32_t v = s->victims[0];
        int64_t run = s->uniq[v];
        read_time = bg_access(s, 0, now, run, 1, 0);
        write_time = bg_access(s, 1, now, run, 1, 1);
        lru_remove(s, 0, v);
        s->loc[v] = 1;
        lru_append(s, 1, v);
    } else {
        memcpy(s->vsort, s->victims, (size_t)nv * sizeof(int32_t));
        for (int64_t i = 1; i < nv; i++) { /* dense asc == page asc */
            int32_t x = s->vsort[i];
            int64_t j = i - 1;
            while (j >= 0 && s->vsort[j] > x) {
                s->vsort[j + 1] = s->vsort[j];
                j--;
            }
            s->vsort[j + 1] = x;
        }
        int64_t i = 0;
        while (i < nv) { /* _contiguous_runs over actual page numbers */
            int64_t j = i + 1;
            while (j < nv &&
                   s->uniq[s->vsort[j]] == s->uniq[s->vsort[j - 1]] + 1)
                j++;
            int64_t run_start = s->uniq[s->vsort[i]];
            read_time += bg_access(s, 0, now, run_start, j - i, 0);
            write_time += bg_access(s, 1, now, run_start, j - i, 1);
            i = j;
        }
        for (int64_t k = 0; k < nv; k++) { /* moves in LRU-victim order */
            int32_t v = s->victims[k];
            lru_remove(s, 0, v);
            s->loc[v] = 1;
            lru_append(s, 1, v);
        }
    }
    upd_util(s, 0);
    upd_util(s, 1);
    s->hi[HI_EVENTS]++;
    s->hi[HI_EVICTED] += nv;
    /* cascade_time is 0.0 (unbounded destination), so this sum is
     * bit-identical to cascade + read + write. */
    return read_time + write_time;
}

/* HybridStorageSystem._ensure_capacity: only device 0 is bounded. */
static double ensure_capacity(S *s, int64_t action, int64_t incoming,
                              double now) {
    if (action != 0)
        return 0.0;
    int64_t used = s->ci[CI_RES0];
    int64_t overflow = used + incoming - s->ci[CI_CAP0];
    if (overflow <= 0)
        return 0.0;
    int64_t a = overflow + s->ci[CI_SLACK];
    int64_t nv = used < a ? used : a;
    if (nv <= 0)
        return 0.0;
    return do_evict(s, nv, now);
}

/* ------------------------------------------------------ replay buffer */
static void rb_fifo_append(S *s, int32_t slot) {
    int64_t tail = s->ci[CI_RB_TAIL];
    s->rb_fprev[slot] = (int32_t)tail;
    s->rb_fnext[slot] = -1;
    if (tail >= 0)
        s->rb_fnext[tail] = slot;
    else
        s->ci[CI_RB_HEAD] = slot;
    s->ci[CI_RB_TAIL] = slot;
}

static void rb_fifo_remove(S *s, int32_t slot) {
    int32_t pr = s->rb_fprev[slot], nx = s->rb_fnext[slot];
    if (pr >= 0)
        s->rb_fnext[pr] = nx;
    else
        s->ci[CI_RB_HEAD] = nx;
    if (nx >= 0)
        s->rb_fprev[nx] = pr;
    else
        s->ci[CI_RB_TAIL] = pr;
}

static void rb_rehash(S *s) {
    int64_t hc = s->ci[CI_RB_HASHCAP];
    for (int64_t i = 0; i < hc; i++)
        s->rb_hash[i] = -1;
    s->ci[CI_RB_TOMB] = 0;
    uint64_t mask = (uint64_t)(hc - 1);
    for (int64_t sl = s->ci[CI_RB_HEAD]; sl >= 0; sl = s->rb_fnext[sl]) {
        uint64_t h = fnv1a(s->rb_keys + sl * 51, 51) & mask;
        while (s->rb_hash[h] != -1)
            h = (h + 1) & mask;
        s->rb_hash[h] = (int32_t)sl;
    }
}

/* ExperienceBuffer.add with precomposed obs serialisations. */
static void rb_add(S *s, const double *obs, int64_t action, double reward,
                   const double *nobs, const uint8_t *obs_key,
                   const uint8_t *nobs_key) {
    uint8_t key[51];
    memcpy(key, obs_key, 24);
    key[24] = (uint8_t)(action & 0xFF);
    uint16_t h16 = f64_to_f16(reward); /* rewards are >= +0.0 here */
    key[25] = (uint8_t)(h16 & 0xFF);
    key[26] = (uint8_t)(h16 >> 8);
    memcpy(key + 27, nobs_key, 24);

    int64_t hc = s->ci[CI_RB_HASHCAP];
    uint64_t mask = (uint64_t)(hc - 1);
    uint64_t h = fnv1a(key, 51) & mask;
    int32_t slot = -1;
    for (;;) {
        int32_t cell = s->rb_hash[h];
        if (cell == -1)
            break;
        if (cell != -2 &&
            memcmp(s->rb_keys + (int64_t)cell * 51, key, 51) == 0) {
            slot = cell;
            break;
        }
        h = (h + 1) & mask;
    }
    if (slot >= 0) { /* dup: bump multiplicity, refresh recency */
        s->rb_mult[slot] += 1.0;
        rb_fifo_remove(s, slot);
        rb_fifo_append(s, slot);
    } else {
        while (s->ci[CI_RB_NENT] >= s->ci[CI_RB_CAP]) { /* FIFO eviction */
            int32_t ev = (int32_t)s->ci[CI_RB_HEAD];
            uint64_t eh = fnv1a(s->rb_keys + (int64_t)ev * 51, 51) & mask;
            while (s->rb_hash[eh] != ev)
                eh = (eh + 1) & mask;
            s->rb_hash[eh] = -2;
            s->ci[CI_RB_TOMB]++;
            rb_fifo_remove(s, ev);
            s->rb_mult[ev] = 0.0;
            s->rb_free[s->ci[CI_RB_FREE_N]++] = ev;
            s->ci[CI_RB_NENT]--;
        }
        if (s->ci[CI_RB_FREE_N] > 0)
            slot = s->rb_free[--s->ci[CI_RB_FREE_N]];
        else
            slot = (int32_t)s->ci[CI_RB_NENT];
        if ((int64_t)slot + 1 > s->ci[CI_RB_SLOT_HI])
            s->ci[CI_RB_SLOT_HI] = slot + 1;
        memcpy(s->rb_obs + (int64_t)slot * 6, obs, 48);
        memcpy(s->rb_nobs + (int64_t)slot * 6, nobs, 48);
        s->rb_act[slot] = action;
        s->rb_rew[slot] = reward;
        s->rb_mult[slot] = 1.0;
        memcpy(s->rb_keys + (int64_t)slot * 51, key, 51);
        uint64_t ip = fnv1a(key, 51) & mask;
        int64_t tomb = -1;
        while (s->rb_hash[ip] != -1) {
            if (s->rb_hash[ip] == -2 && tomb < 0)
                tomb = (int64_t)ip;
            ip = (ip + 1) & mask;
        }
        if (tomb >= 0) {
            s->rb_hash[tomb] = slot;
            s->ci[CI_RB_TOMB]--;
        } else {
            s->rb_hash[ip] = slot;
        }
        rb_fifo_append(s, slot);
        s->ci[CI_RB_NENT]++;
        if ((s->ci[CI_RB_NENT] + s->ci[CI_RB_TOMB]) * 4 >= hc * 3)
            rb_rehash(s);
    }
    s->ci[CI_RB_TOTAL]++;
}

/* -------------------------------------------------------- action memo */
static int64_t memo_get(S *s, const uint8_t *key24) {
    uint64_t mask = (uint64_t)(s->ci[CI_MEMO_HASHCAP] - 1);
    uint64_t h = fnv1a(key24, 24) & mask;
    for (;;) {
        int32_t cell = s->memo_hash[h];
        if (cell == -1)
            return -1;
        if (memcmp(s->memo_keys + (int64_t)cell * 24, key24, 24) == 0)
            return s->memo_act[cell];
        h = (h + 1) & mask;
    }
}

/* Stage key+obs at the next memo slot (before suspending for inference);
 * commit fills the action and links the hash cell on resume. */
static void memo_stage(S *s, const uint8_t *key24, const double *obs) {
    int64_t n = s->ci[CI_MEMO_N];
    memcpy(s->memo_keys + n * 24, key24, 24);
    memcpy(s->memo_obs + n * 6, obs, 48);
}

static void memo_commit(S *s, int64_t action) {
    int64_t n = s->ci[CI_MEMO_N];
    s->memo_act[n] = (int32_t)action;
    uint64_t mask = (uint64_t)(s->ci[CI_MEMO_HASHCAP] - 1);
    uint64_t h = fnv1a(s->memo_keys + n * 24, 24) & mask;
    while (s->memo_hash[h] != -1)
        h = (h + 1) & mask;
    s->memo_hash[h] = (int32_t)n;
    s->ci[CI_MEMO_N] = n + 1;
}

/* core.features.log2_bin for integer-valued inputs >= 0 */
static inline int64_t log2b(int64_t v, int64_t nb) {
    if (v < 1)
        return 0;
    int64_t b = (int64_t)log2((double)v);
    int64_t m = nb - 1;
    return b < m ? b : m;
}

/* ------------------------------------------------------------ the run */
long long sib_run(void **p) {
    S st;
    S *s = &st;
    s->ci = (int64_t *)p[P_CTRL_I];
    s->cd = (double *)p[P_CTRL_D];
    s->ts = (const double *)p[P_TS];
    s->op = (const uint8_t *)p[P_OP];
    s->dpage = (const int64_t *)p[P_DPAGE];
    s->size = (const int64_t *)p[P_SIZE];
    s->uniq = (const int64_t *)p[P_UNIQ];
    s->loc = (int8_t *)p[P_LOC];
    s->lprev = (int32_t *)p[P_LRU_PREV];
    s->lnext = (int32_t *)p[P_LRU_NEXT];
    s->cnt = (int64_t *)p[P_CNT];
    s->last = (int64_t *)p[P_LAST];
    s->maxima = (const double *)p[P_MAXIMA];
    s->obs_mail = (double *)p[P_OBS_MAIL];
    s->pend_obs = (double *)p[P_PEND_OBS];
    s->pend_key = (uint8_t *)p[P_PEND_KEY];
    s->action_counts = (int64_t *)p[P_ACTION_COUNTS];
    s->rngst = (uint64_t *)p[P_RNG];
    s->rb_obs = (double *)p[P_RB_OBS];
    s->rb_nobs = (double *)p[P_RB_NOBS];
    s->rb_act = (int64_t *)p[P_RB_ACT];
    s->rb_rew = (double *)p[P_RB_REW];
    s->rb_mult = (double *)p[P_RB_MULT];
    s->rb_keys = (uint8_t *)p[P_RB_KEYS];
    s->rb_hash = (int32_t *)p[P_RB_HASH];
    s->rb_fprev = (int32_t *)p[P_RB_FPREV];
    s->rb_fnext = (int32_t *)p[P_RB_FNEXT];
    s->rb_free = (int32_t *)p[P_RB_FREE];
    s->rb_order = (int64_t *)p[P_RB_ORDER];
    s->memo_keys = (uint8_t *)p[P_MEMO_KEYS];
    s->memo_obs = (double *)p[P_MEMO_OBS];
    s->memo_act = (int32_t *)p[P_MEMO_ACT];
    s->memo_hash = (int32_t *)p[P_MEMO_HASH];
    s->dd = (double *)p[P_DEV_D];
    s->di = (int64_t *)p[P_DEV_I];
    s->hi = (int64_t *)p[P_HSS_I];
    s->hd = (double *)p[P_HSS_D];
    s->victims = (int32_t *)p[P_VICTIMS];
    s->vsort = (int32_t *)p[P_VSORT];

    int64_t *ci = s->ci;
    double *cd = s->cd;

    pcg64_t rng;
    rng.state = (((__uint128_t)s->rngst[0]) << 64) | s->rngst[1];
    rng.inc = (((__uint128_t)s->rngst[2]) << 64) | s->rngst[3];
    rng.has_uint32 = (int)s->rngst[4];
    rng.uinteger = (uint32_t)s->rngst[5];

    const int64_t n_total = ci[CI_NTOTAL];
    const int64_t warmup_end = ci[CI_WARMUP];
    const int64_t train_interval = ci[CI_TRAIN_INT];
    const int64_t batch_size = ci[CI_BATCH];
    const int64_t init_random = ci[CI_INIT_RAND];
    const int64_t ndev = ci[CI_NDEV];
    const int64_t size_bins = ci[CI_SIZE_BINS];
    const int64_t intr_bins = ci[CI_INTR_BINS];
    const int64_t cnt_bins = ci[CI_CNT_BINS];
    const int64_t cap_bins = ci[CI_CAP_BINS];
    const double eps = cd[CD_EPS];
    const double unit = cd[CD_UNIT];
    const double evict_coef = cd[CD_EVICT_COEF];
    const double max_reward = cd[CD_MAX_REWARD];

    int64_t i = ci[CI_I];
    int resumed = (int)ci[CI_RESUMED];
    int64_t seen = ci[CI_SEEN];
    int64_t clock = ci[CI_CLOCK];
    double completion_s = cd[CD_COMPLETION];
    double reward_sum = cd[CD_REWARD_SUM];

    for (; i < n_total; i++) {
        double now;
        int64_t dp, size, action;
        int is_wr;
        double obs[6];
        uint8_t obs_key[24];

        if (resumed) { /* back from inference: commit memo, rejoin tick */
            resumed = 0;
            ci[CI_RESUMED] = 0;
            action = ci[CI_ACTION];
            int64_t mslot = ci[CI_MEMO_N];
            memcpy(obs, s->memo_obs + mslot * 6, 48);
            memcpy(obs_key, s->memo_keys + mslot * 24, 24);
            memo_commit(s, action);
            now = s->ts[i];
            dp = s->dpage[i];
            size = s->size[i];
            is_wr = s->op[i];
            goto after_decision;
        }

        /* _fetch(): warmup-window reset before request warmup_end */
        if (i == warmup_end && i > 0) {
            for (int k = 0; k < HI_LEN; k++)
                s->hi[k] = 0;
            for (int k = 0; k < HD_LEN; k++)
                s->hd[k] = 0.0;
            for (int64_t d = 0; d < ndev; d++) {
                int64_t *di = s->di + d * DI_STRIDE;
                di[DI_READS] = di[DI_WRITES] = di[DI_PR] = di[DI_PW] = 0;
                di[DI_GC_EVENTS] = di[DI_BUFFERED] = 0;
                double *dd = s->dd + d * DD_STRIDE;
                dd[DD_BUSY] = dd[DD_QWAIT] = dd[DD_GC_TIME] = 0.0;
            }
            reward_sum = 0.0;
        }

        now = s->ts[i];
        dp = s->dpage[i];
        size = s->size[i];
        is_wr = s->op[i];

        /* ---- observe_keyed (features._bins_all) ---- */
        {
            int64_t size_bin = log2b(size, size_bins);
            int64_t lastv = s->last[dp];
            int64_t intr_bin =
                lastv < 0 ? intr_bins - 1 : log2b(clock - lastv, intr_bins);
            int64_t cntv = s->cnt[dp] + 1;
            int64_t cnt_bin = log2b(cntv, cnt_bins);
            double frac =
                (double)(ci[CI_CAP0] - ci[CI_RES0]) / (double)ci[CI_CAP0];
            int64_t cap_bin;
            if (frac >= 1.0)
                cap_bin = cap_bins - 1;
            else if (frac <= 0.0)
                cap_bin = 0;
            else
                cap_bin = (int64_t)(frac * (double)cap_bins);
            int8_t locv = s->loc[dp];
            int64_t bins[6] = {size_bin,
                               (int64_t)is_wr,
                               intr_bin,
                               cnt_bin,
                               cap_bin,
                               locv < 0 ? 1 : (int64_t)locv};
            for (int k = 0; k < 6; k++)
                obs[k] = (double)bins[k] / s->maxima[k];
            for (int k = 0; k < 6; k++) {
                float f = (float)obs[k];
                memcpy(obs_key + 4 * k, &f, 4);
            }
        }

        /* ---- close the previous transition ---- */
        if (ci[CI_PENDING]) {
            rb_add(s, s->pend_obs, ci[CI_PEND_ACTION], cd[CD_PEND_REWARD],
                   obs, s->pend_key, obs_key);
            ci[CI_PENDING] = 0;
        }

        /* ---- epsilon-greedy decision ---- */
        if (seen < init_random) {
            action = pcg_integers(&rng, (uint64_t)ndev);
        } else if (pcg_random(&rng) < eps) {
            action = pcg_integers(&rng, (uint64_t)ndev);
        } else {
            action = memo_get(s, obs_key);
            if (action < 0) { /* memo miss: hand the forward to Python */
                if (ci[CI_MEMO_N] >= ci[CI_MEMO_CAP]) {
                    ci[CI_ERR] = 1;
                    ci[CI_STATUS] = ST_ERROR;
                    ci[CI_I] = i;
                    goto save_state;
                }
                memo_stage(s, obs_key, obs);
                memcpy(s->obs_mail, obs, 48);
                ci[CI_I] = i;
                ci[CI_RESUMED] = 1;
                ci[CI_STATUS] = ST_NEED_INFERENCE;
                goto save_state;
            }
        }

    after_decision:
        s->action_counts[action]++;

        /* closed-loop issue-time clamp */
        if (now < completion_s)
            now = completion_s;

        /* ---- HybridStorageSystem.serve ---- */
        {
            double eviction_time = 0.0, latency;
            int64_t promoted = 0, demoted = 0;
            int64_t pend = dp + size;
            int64_t actual = s->uniq[dp];

            if (is_wr) {
                int64_t incoming = 0;
                for (int64_t pp = dp; pp < pend; pp++) {
                    if (s->loc[pp] == action)
                        lru_mte(s, action, pp);
                    else
                        incoming++;
                }
                if (incoming > 0)
                    eviction_time += ensure_capacity(s, action, incoming, now);
                latency = fg_access(s, (int)action, now, actual, size, 1);
                for (int64_t pp = dp; pp < pend; pp++) { /* table.place */
                    int8_t prev = s->loc[pp];
                    if (prev < 0) {
                        s->loc[pp] = (int8_t)action;
                        lru_append(s, action, pp);
                    } else if (prev == action) {
                        lru_mte(s, action, pp);
                    } else {
                        lru_remove(s, prev, pp);
                        s->loc[pp] = (int8_t)action;
                        lru_append(s, action, pp);
                    }
                }
                upd_util(s, action);
            } else if (size == 1) {
                int64_t locv = s->loc[dp];
                if (locv < 0) { /* lazy map to the slowest device */
                    locv = 1;
                    s->loc[dp] = 1;
                    lru_append(s, 1, dp);
                }
                latency = fg_access(s, (int)locv, now, actual, 1, 0);
                lru_mte(s, locv, dp);
                if (locv != action) {
                    eviction_time += ensure_capacity(s, action, 1, now);
                    bg_access(s, (int)action, now, actual, 1, 1);
                    if (action < locv)
                        promoted = 1;
                    else
                        demoted = 1;
                    lru_remove(s, locv, dp);
                    s->loc[dp] = (int8_t)action;
                    lru_append(s, action, dp);
                    upd_util(s, locv);
                    upd_util(s, action);
                }
            } else {
                int64_t gcount[2] = {0, 0}, gfirst[2] = {-1, -1};
                for (int64_t pp = dp; pp < pend; pp++) {
                    int8_t l = s->loc[pp];
                    if (l < 0) {
                        l = 1;
                        s->loc[pp] = 1;
                        lru_append(s, 1, pp);
                    }
                    if (gcount[l] == 0)
                        gfirst[l] = pp;
                    gcount[l]++;
                }
                latency = 0.0;
                for (int64_t d = 0; d < 2; d++) { /* sorted(groups) */
                    if (gcount[d] == 0)
                        continue;
                    double lat = fg_access(s, (int)d, now, s->uniq[gfirst[d]],
                                           gcount[d], 0);
                    if (lat >= latency)
                        latency = lat;
                    for (int64_t pp = dp; pp < pend; pp++)
                        if (s->loc[pp] == d)
                            lru_mte(s, d, pp);
                }
                int64_t ngroups = (gcount[0] > 0) + (gcount[1] > 0);
                int64_t n_move = 0, mfirst = -1;
                /* to_move membership is fixed BEFORE ensure_capacity:
                 * an eviction below may push this request's own
                 * device-0 pages to device 1, and re-checking loc
                 * afterwards would wrongly drag them back (the serial
                 * path builds to_move first, then evicts). */
                uint8_t mv_stack[256];
                uint8_t *mv = NULL;
                if (ngroups > 1 || gcount[action] == 0) {
                    mv = size <= 256 ? mv_stack
                                     : (uint8_t *)malloc((size_t)size);
                    for (int64_t pp = dp; pp < pend; pp++) {
                        uint8_t m = (uint8_t)(s->loc[pp] != action);
                        mv[pp - dp] = m;
                        if (m) {
                            if (n_move == 0)
                                mfirst = pp;
                            n_move++;
                        }
                    }
                }
                if (n_move > 0) {
                    int64_t src = 1 - action; /* the only other device */
                    eviction_time += ensure_capacity(s, action, n_move, now);
                    bg_access(s, (int)action, now, s->uniq[mfirst], n_move, 1);
                    if (action < src)
                        promoted += n_move;
                    else
                        demoted += n_move;
                    for (int64_t pp = dp; pp < pend; pp++) {
                        if (mv[pp - dp]) { /* table.move */
                            lru_remove(s, src, pp);
                            s->loc[pp] = (int8_t)action;
                            lru_append(s, action, pp);
                        }
                    }
                    upd_util(s, src);
                    upd_util(s, action);
                }
                if (mv != NULL && mv != mv_stack)
                    free(mv);
            }

            /* tracker.record + stats tail */
            for (int64_t pp = dp; pp < pend; pp++) {
                s->cnt[pp]++;
                s->last[pp] = clock;
                clock++;
            }
            s->hi[HI_REQUESTS]++;
            if (is_wr)
                s->hi[HI_WRITES]++;
            else
                s->hi[HI_READS]++;
            s->hd[HD_TOTAL_LAT] += latency;
            s->hd[HD_EVICT_TIME] += eviction_time;
            s->hi[HI_PROMOTED] += promoted;
            s->hi[HI_DEMOTED] += demoted;
            s->hi[HI_PLACE0 + action]++;
            double completion = now + latency;
            if (completion > s->hd[HD_LAST_COMPLETION])
                s->hd[HD_LAST_COMPLETION] = completion;
            completion_s = now + latency;

            /* ---- LatencyReward (Eq. 1) ---- */
            double lat_units = latency / unit;
            lat_units = lat_units > 1e-9 ? lat_units : 1e-9;
            double inv = 1.0 / lat_units;
            double base = inv < max_reward ? inv : max_reward;
            double reward;
            if (eviction_time > 0.0) {
                double r = base - evict_coef * (eviction_time / unit);
                reward = r > 0.0 ? r : 0.0;
            } else {
                reward = base;
            }
            reward_sum += reward;

            memcpy(s->pend_obs, obs, 48);
            memcpy(s->pend_key, obs_key, 24);
            ci[CI_PEND_ACTION] = action;
            cd[CD_PEND_REWARD] = reward;
            ci[CI_PENDING] = 1;
        }

        seen++;
        if (seen % train_interval == 0 && ci[CI_RB_NENT] >= batch_size) {
            int64_t k = 0; /* export FIFO order for the sampling CDF */
            for (int64_t sl = ci[CI_RB_HEAD]; sl >= 0; sl = s->rb_fnext[sl])
                s->rb_order[k++] = sl;
            ci[CI_ORDER_N] = k;
            ci[CI_I] = i + 1;
            ci[CI_RESUMED] = 0;
            ci[CI_STATUS] = ST_TRAIN_GATE;
            goto save_state;
        }
    }

    ci[CI_I] = n_total;
    ci[CI_STATUS] = ST_DONE;
    { /* final FIFO order export (buffer._entries reconstruction) */
        int64_t k = 0;
        for (int64_t sl = ci[CI_RB_HEAD]; sl >= 0; sl = s->rb_fnext[sl])
            s->rb_order[k++] = sl;
        ci[CI_ORDER_N] = k;
    }

save_state:
    ci[CI_SEEN] = seen;
    ci[CI_CLOCK] = clock;
    cd[CD_COMPLETION] = completion_s;
    cd[CD_REWARD_SUM] = reward_sum;
    s->rngst[0] = (uint64_t)(rng.state >> 64);
    s->rngst[1] = (uint64_t)rng.state;
    s->rngst[2] = (uint64_t)(rng.inc >> 64);
    s->rngst[3] = (uint64_t)rng.inc;
    s->rngst[4] = (uint64_t)rng.has_uint32;
    s->rngst[5] = (uint64_t)rng.uinteger;
    return ci[CI_STATUS];
}
