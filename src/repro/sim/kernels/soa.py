"""Structure-of-arrays containers for the tick engines.

The lockstep engine walks per-request Python objects: every tick
re-reads ``Request`` dataclass attributes, and per-lane device state
lives scattered across ``StorageDevice``/``PageTable`` instances.  The
SoA engines instead decompose a lane's trace once into contiguous
parallel arrays (:class:`TraceSoA`) and expose the per-lane tick state
— completion horizon, device queue depths and utilisation, reward
accumulators — as arrays indexed by lane (:class:`LaneSoA`).

The containers are deliberately *derived* views: the live simulation
objects (``HybridStorageSystem``, ``SibylAgent``) stay the source of
truth, because bit-identity to the serial path is defined against their
state.  ``TraceSoA`` feeds the engines' input side (and the compiled
kernel's dense page remap); ``LaneSoA`` snapshots the output side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from ...hss.request import Request

__all__ = ["TraceSoA", "LaneSoA"]


@dataclass
class TraceSoA:
    """One lane's trace decomposed into parallel arrays.

    ``requests`` keeps the original objects (the engines fall back to
    the generic ``HybridStorageSystem.serve`` for multi-page requests,
    which wants a :class:`~repro.hss.request.Request`); the arrays carry
    the per-field columns the hot loop actually reads.
    """

    requests: List[Request]
    timestamps: np.ndarray  # float64 (n,)
    ops: np.ndarray  # uint8   (n,)  0=read, 1=write
    pages: np.ndarray  # int64   (n,)  starting logical page
    sizes: np.ndarray  # int64   (n,)  request size in pages

    @classmethod
    def from_requests(cls, requests: Sequence[Request]) -> "TraceSoA":
        requests = list(requests)
        n = len(requests)
        return cls(
            requests=requests,
            timestamps=np.fromiter(
                (r.timestamp for r in requests), dtype=np.float64, count=n
            ),
            ops=np.fromiter((r.op for r in requests), dtype=np.uint8, count=n),
            pages=np.fromiter(
                (r.page for r in requests), dtype=np.int64, count=n
            ),
            sizes=np.fromiter(
                (r.size for r in requests), dtype=np.int64, count=n
            ),
        )

    @classmethod
    def from_run(cls, run) -> "TraceSoA":
        """Materialise a fresh ``PolicyRun``'s remaining trace.

        Consumes the run's iterator — the engine that called this owns
        the run to completion from here on.
        """
        return cls.from_requests(list(run._iter))

    @property
    def n(self) -> int:
        return len(self.requests)

    @property
    def max_size(self) -> int:
        return int(self.sizes.max()) if len(self.requests) else 0

    def touched_pages(self) -> np.ndarray:
        """Sorted unique logical pages the trace touches (all sizes).

        The compiled kernel remaps these to dense ids so the page table,
        access tracker, and LRU lists become flat arrays instead of hash
        maps.  Multi-page requests are expanded vectorised: repeat each
        start page by its size, add the within-request offsets.
        """
        sizes = self.sizes
        if self.max_size <= 1:
            return np.unique(self.pages)
        reps = np.repeat(self.pages, sizes)
        starts = np.cumsum(sizes) - sizes
        offsets = np.arange(reps.shape[0], dtype=np.int64) - np.repeat(
            starts, sizes
        )
        return np.unique(reps + offsets)


@dataclass
class LaneSoA:
    """Per-lane tick state as contiguous arrays indexed by lane.

    One row per lane; columns are the quantities the engines account
    every tick: the closed-loop completion horizon, the per-device
    queue depth (busy horizon) and SSD utilisation, the request index,
    and the accumulated reward.  Filled by the engines as lanes cross
    their warmup boundary and finish, so batch callers (the hot-path
    profiler, future serving daemons) read one array instead of K
    object graphs.
    """

    completion_s: np.ndarray  # float64 (K,)
    index: np.ndarray  # int64   (K,)
    queue_depth_s: np.ndarray  # float64 (K, D) device busy horizons
    utilization: np.ndarray  # float64 (K, D)
    reward_sum: np.ndarray  # float64 (K,)

    @classmethod
    def for_runs(cls, runs: Sequence) -> "LaneSoA":
        k = len(runs)
        d = max((run.hss.n_devices for run in runs), default=0)
        return cls(
            completion_s=np.zeros(k, dtype=np.float64),
            index=np.zeros(k, dtype=np.int64),
            queue_depth_s=np.zeros((k, d), dtype=np.float64),
            utilization=np.zeros((k, d), dtype=np.float64),
            reward_sum=np.zeros(k, dtype=np.float64),
        )

    def snapshot(self, lane: int, run, reward_sum: float) -> None:
        """Record ``run``'s current state into row ``lane``."""
        hss = run.hss
        self.completion_s[lane] = run._completion_s
        self.index[lane] = run._index
        for d, dev in enumerate(hss.devices):
            self.queue_depth_s[lane, d] = dev._next_free_s
            self.utilization[lane, d] = getattr(dev, "utilization", 0.0)
        self.reward_sum[lane] = reward_sum
