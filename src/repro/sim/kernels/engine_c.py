"""The compiled tick engine: C hot loop, Python at the barriers.

``kernel.c`` owns the whole per-request tick — PCG64 exploration draws,
feature binning, the device latency models, LRU placement/eviction,
replay dedup — over flat arrays with dense page ids, and *suspends*
whenever serial semantics need Python:

* **inference barrier** — an action-memo miss; the caller runs
  ``inference_net.best_action`` on the mailed observation and re-enters
  (the kernel commits the memo entry and resumes mid-tick);
* **training gate** — ``seen % train_interval == 0`` with a full enough
  buffer; the caller mirrors the replay/memo state onto the live Python
  objects, drives the agent's own ``train_begin``/``train_commit``
  (identical serial code), writes the refreshed action memo back, and
  re-enters.

Everything the serial path would have mutated — RNG state, replay
contents and caches, action memo, page table, tracker, device state and
stats — is reconstructed on the live objects at the end, so the result
(and all post-run state) is bit-identical to serial ``run_policy``.
The NumPy reference proves the arithmetic; this engine re-executes it
in C with the same operations in the same order (``-ffp-contract=off``
keeps the compiler from fusing them).

The shared library is built on demand with the system C compiler into a
gitignored cache keyed by the source hash; when no toolchain is
available the backend reports itself unavailable and ``auto`` falls
back to the NumPy engine.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from collections import OrderedDict
from typing import List, Optional

import numpy as np

from ...hss.hdd import HDDDevice
from ...hss.ssd import SSDDevice
from ...obs.tracer import span as _span
from .soa import LaneSoA, TraceSoA

__all__ = ["available", "unavailable_reason", "run_lanes_c", "run_one_c"]

# ---------------------------------------------------------------- ABI
# Pointer-table indices (mirror kernel.c's P_* enum).
(
    P_CTRL_I, P_CTRL_D, P_TS, P_OP, P_DPAGE, P_SIZE, P_UNIQ, P_LOC,
    P_LRU_PREV, P_LRU_NEXT, P_CNT, P_LAST, P_MAXIMA, P_OBS_MAIL,
    P_PEND_OBS, P_PEND_KEY, P_ACTION_COUNTS, P_RNG,
    P_RB_OBS, P_RB_NOBS, P_RB_ACT, P_RB_REW, P_RB_MULT, P_RB_KEYS,
    P_RB_HASH, P_RB_FPREV, P_RB_FNEXT, P_RB_FREE, P_RB_ORDER,
    P_MEMO_KEYS, P_MEMO_OBS, P_MEMO_ACT, P_MEMO_HASH,
    P_DEV_D, P_DEV_I, P_HSS_I, P_HSS_D, P_VICTIMS, P_VSORT,
) = range(39)
_NPTR = 39

# ctrl_i slots (kernel.c CI_*).
(
    CI_STATUS, CI_I, CI_RESUMED, CI_NTOTAL, CI_WARMUP, CI_SEEN,
    CI_TRAIN_INT, CI_BATCH, CI_INIT_RAND, CI_CLOCK, CI_CAP0, CI_SLACK,
    CI_RES0, CI_RES1, CI_HEAD0, CI_TAIL0, CI_HEAD1, CI_TAIL1,
    CI_PENDING, CI_PEND_ACTION,
    CI_RB_CAP, CI_RB_NENT, CI_RB_HEAD, CI_RB_TAIL, CI_RB_FREE_N,
    CI_RB_TOMB, CI_RB_HASHCAP, CI_RB_TOTAL, CI_RB_SLOT_HI,
    CI_MEMO_N, CI_MEMO_CAP, CI_MEMO_HASHCAP,
    CI_ACTION, CI_ERR, CI_ORDER_N,
    CI_SIZE_BINS, CI_INTR_BINS, CI_CNT_BINS, CI_CAP_BINS, CI_NDEV,
) = range(40)
_CI_LEN = 40

# ctrl_d slots (kernel.c CD_*).
(
    CD_COMPLETION, CD_REWARD_SUM, CD_EPS, CD_UNIT, CD_EVICT_COEF,
    CD_MAX_REWARD, CD_PEND_REWARD,
) = range(7)
_CD_LEN = 7

# Per-device blocks (kernel.c DD_* / DI_*).
DD_STRIDE = 32
(
    DD_NEXT_FREE, DD_BUSY, DD_QWAIT, DD_UTIL, DD_GC_TIME,
    DD_ROVER, DD_WOVER, DD_RBW, DD_WBW, DD_BI,
    DD_READ1, DD_GC_THRESH, DD_GC_LAT, DD_GC_DENOM, DD_BUF_LAT,
    DD_TR_UNIT, DD_BUF_OCC, DD_BUF_LAST,
    DD_AVG_ROT, DD_MIN_SEEK, DD_SEEK_SPAN,
) = range(21)
DI_STRIDE = 24
(
    DI_TYPE, DI_READS, DI_WRITES, DI_PR, DI_PW, DI_GC_EVENTS,
    DI_BUFFERED, DI_WSG, DI_HEAD, DI_TARGET, DI_GC_TRIG, DI_BUF_PAGES,
    DI_SEQWIN, DI_TRACKSPAN, DI_CAPPAGES, DI_HAS_UTIL, DI_UTIL_CAP,
) = range(17)

# HSS stats blocks (kernel.c HI_* / HD_*).
(
    HI_REQUESTS, HI_READS, HI_WRITES, HI_PROMOTED, HI_DEMOTED,
    HI_EVENTS, HI_EVICTED, HI_PLACE0, HI_PLACE1,
) = range(9)
_HI_LEN = 9
HD_TOTAL_LAT, HD_EVICT_TIME, HD_LAST_COMPLETION = range(3)
_HD_LEN = 3

# Status codes.
_ST_DONE = 0
_ST_NEED_INFERENCE = 1
_ST_TRAIN_GATE = 2
_ST_ERROR = 3

_MEMO_CAP = 1 << 16
_U64 = (1 << 64) - 1

# Bit-identity literals shared with kernel.c, declared for the
# SBL-CONST analyzer: every "c"-side value must appear verbatim in the
# C source, every "py"-side value must match a constant in this
# module.  Editing either side without the other fails `repro lint`.
_MIRROR_CONSTANTS = {
    "pcg64_mult_hi": 2549297995355413924,
    "pcg64_mult_lo": 4865540595714422341,
    "pcg64_random_scale": 9007199254740992.0,
    "fnv1a_offset_basis": 1469598103934665603,
    "fnv1a_prime": 1099511628211,
    "f64_abs_mask": 0x7FFFFFFFFFFFFFFF,
    "f64_mantissa_mask": 0xFFFFFFFFFFFFF,
    "f16_sign_bit": 0x8000,
    "f16_nan_bits": 0x7E00,
    "f16_inf_bits": 0x7C00,
    "action_memo_capacity": (1 << 16, "py"),
}

# ------------------------------------------------------------- build
_lib = None
_build_error: Optional[str] = None


def _source_path() -> str:
    return os.path.join(os.path.dirname(__file__), "kernel.c")


def _prune_stale_builds(build_dir: str, keep: str) -> None:
    """Remove content-hashed kernel binaries other than ``keep``.

    Every kernel.c edit produces a new ``kernel-<hash>.so``; without
    this, ``_build/`` accumulates one orphan per edit forever.  In-flight
    temp builds (``tmp*`` from :func:`tempfile.mkstemp`) never match the
    ``kernel-*.so`` pattern, so concurrent builders are safe.  Failures
    are ignored: pruning is a courtesy, not a correctness step.
    """
    try:
        names = sorted(os.listdir(build_dir))
    except OSError:
        return
    for name in names:
        if (
            name.startswith("kernel-")
            and name.endswith(".so")
            and name != keep
        ):
            try:
                os.unlink(os.path.join(build_dir, name))
            except OSError:
                pass


def _load() -> Optional[ctypes.CDLL]:
    """Build (if needed) and load the kernel; None when unavailable."""
    global _lib, _build_error
    if _lib is not None or _build_error is not None:
        return _lib
    src = _source_path()
    try:
        with open(src, "rb") as fh:
            code = fh.read()
    except OSError as exc:
        _build_error = f"kernel source unreadable: {exc}"
        return None
    digest = hashlib.sha256(code).hexdigest()[:16]
    build_dir = os.path.join(os.path.dirname(src), "_build")
    so_path = os.path.join(build_dir, f"kernel-{digest}.so")
    if not os.path.exists(so_path):
        try:
            os.makedirs(build_dir, exist_ok=True)
            # Build to a temp name then rename, so concurrent builders
            # never load a half-written library.
            fd, tmp = tempfile.mkstemp(dir=build_dir, suffix=".so")
            os.close(fd)
            cmd = [
                "gcc", "-O2", "-shared", "-fPIC", "-ffp-contract=off",
                "-o", tmp, src, "-lm",
            ]
            with _span("kernel.build", cat="kernel", digest=digest):
                proc = subprocess.run(cmd, capture_output=True, text=True)
            if proc.returncode != 0:
                os.unlink(tmp)
                _build_error = f"compiler failed: {proc.stderr.strip()[:500]}"
                return None
            os.replace(tmp, so_path)
            _prune_stale_builds(build_dir, os.path.basename(so_path))
        except (OSError, subprocess.SubprocessError) as exc:
            _build_error = f"build failed: {exc}"
            return None
    try:
        lib = ctypes.CDLL(so_path)
        lib.sib_run.restype = ctypes.c_longlong
        lib.sib_run.argtypes = [ctypes.POINTER(ctypes.c_void_p)]
    except OSError as exc:
        _build_error = f"load failed: {exc}"
        return None
    _lib = lib
    return _lib


def available() -> bool:
    """Whether the compiled kernel can be (or has been) built."""
    return _load() is not None


def unavailable_reason() -> str:
    """Why :func:`available` is False (empty string when it isn't)."""
    if _load() is not None:
        return ""
    return _build_error or "unknown"


# ------------------------------------------------------------- helpers
def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p *= 2
    return p


def _rng_state_to_words(rng: np.random.Generator) -> np.ndarray:
    st = rng.bit_generator.state
    s, inc = st["state"]["state"], st["state"]["inc"]
    return np.array(
        [
            (s >> 64) & _U64, s & _U64, (inc >> 64) & _U64, inc & _U64,
            int(st["has_uint32"]), int(st["uinteger"]),
        ],
        dtype=np.uint64,
    )


def _rng_words_to_state(rng: np.random.Generator, words: np.ndarray) -> None:
    rng.bit_generator.state = {
        "bit_generator": "PCG64",
        "state": {
            "state": (int(words[0]) << 64) | int(words[1]),
            "inc": (int(words[2]) << 64) | int(words[3]),
        },
        "has_uint32": int(words[4]),
        "uinteger": int(words[5]),
    }


def _kernel_ready(run, trace: TraceSoA) -> bool:
    """Per-run preconditions beyond ``kernel_eligible``.

    The kernel assumes the cold-start state its flat mirrors encode: an
    empty page table/tracker/memo/replay and a PCG64 agent generator.
    Anything else (a resumed run, an exotic bit generator) silently
    takes the NumPy reference — same results, Python speed.
    """
    policy = run.policy
    hss = run.hss
    if trace.n == 0:
        return False
    if type(policy.rng.bit_generator).__name__ != "PCG64":
        return False
    if hss.table._location or hss.tracker._count or hss.tracker._last_access:
        return False
    if policy._pending is not None or policy._requests_seen != 0:
        return False
    if policy._action_cache or policy._cache_obs:
        return False
    buf = policy.buffer
    if buf._obs is not None or buf._free or buf._total_added != 0:
        return False
    if hss.slowest != 1 or policy.hyperparams.train_interval < 1:
        return False
    counts = policy.action_counts
    if (
        not isinstance(counts, np.ndarray)
        or counts.dtype != np.int64
        or not counts.flags["C_CONTIGUOUS"]
    ):
        return False
    return True


def _seed_device(run, d: int, dd: np.ndarray, di: np.ndarray) -> None:
    """Mirror device ``d``'s model constants and live state into the
    kernel's flat blocks (exactly the values ``_device_access`` hoists)."""
    hss = run.hss
    dev = hss.devices[d]
    spec = dev.spec
    stats = dev.stats
    drow = dd[d * DD_STRIDE:]
    irow = di[d * DI_STRIDE:]
    drow[DD_NEXT_FREE] = dev._next_free_s
    drow[DD_BUSY] = stats.busy_time_s
    drow[DD_QWAIT] = stats.queue_wait_s
    drow[DD_UTIL] = getattr(dev, "utilization", 0.0)
    drow[DD_GC_TIME] = stats.gc_time_s
    drow[DD_ROVER] = spec.read_overhead_s
    drow[DD_WOVER] = spec.write_overhead_s
    drow[DD_RBW] = spec.read_bandwidth_bps
    drow[DD_WBW] = spec.write_bandwidth_bps
    drow[DD_BI] = dev.background_interference
    irow[DI_READS] = stats.reads
    irow[DI_WRITES] = stats.writes
    irow[DI_PR] = stats.pages_read
    irow[DI_PW] = stats.pages_written
    irow[DI_GC_EVENTS] = stats.gc_events
    ssd = hss._ssd[d]
    irow[DI_HAS_UTIL] = 0 if ssd is None else 1
    irow[DI_UTIL_CAP] = 1 if ssd is None else hss._util_cap[d]
    if isinstance(dev, HDDDevice):
        config = dev.config
        irow[DI_TYPE] = 1
        drow[DD_AVG_ROT] = config.avg_rotational_s
        drow[DD_MIN_SEEK] = config.min_seek_s
        drow[DD_SEEK_SPAN] = config.max_seek_s - config.min_seek_s
        irow[DI_HEAD] = dev._head_page
        irow[DI_TARGET] = dev.target_page
        irow[DI_SEQWIN] = config.sequential_window_pages
        irow[DI_TRACKSPAN] = config.track_span_pages
        irow[DI_CAPPAGES] = max(1, spec.capacity_pages)
    else:
        config = dev.config
        irow[DI_TYPE] = 0
        drow[DD_READ1] = dev._read_1pg_s
        drow[DD_GC_THRESH] = config.gc_threshold
        drow[DD_GC_LAT] = config.gc_latency_s
        drow[DD_GC_DENOM] = max(1e-9, 1.0 - config.gc_threshold)
        drow[DD_BUF_LAT] = config.buffered_write_latency_s
        drow[DD_TR_UNIT] = 4096.0 / spec.write_bandwidth_bps
        drow[DD_BUF_OCC] = dev._buffer_occupancy
        drow[DD_BUF_LAST] = dev._buffer_last_drain_s
        irow[DI_WSG] = dev._writes_since_gc
        irow[DI_BUFFERED] = stats.buffered_writes
        irow[DI_GC_TRIG] = config.gc_trigger_pages
        irow[DI_BUF_PAGES] = config.buffer_pages


def _writeback_device(run, d: int, dd: np.ndarray, di: np.ndarray) -> None:
    hss = run.hss
    dev = hss.devices[d]
    stats = dev.stats
    drow = dd[d * DD_STRIDE:]
    irow = di[d * DI_STRIDE:]
    dev._next_free_s = float(drow[DD_NEXT_FREE])
    stats.busy_time_s = float(drow[DD_BUSY])
    stats.queue_wait_s = float(drow[DD_QWAIT])
    stats.gc_time_s = float(drow[DD_GC_TIME])
    stats.reads = int(irow[DI_READS])
    stats.writes = int(irow[DI_WRITES])
    stats.pages_read = int(irow[DI_PR])
    stats.pages_written = int(irow[DI_PW])
    stats.gc_events = int(irow[DI_GC_EVENTS])
    if isinstance(dev, HDDDevice):
        dev._head_page = int(irow[DI_HEAD])
        dev.target_page = int(irow[DI_TARGET])
    else:
        dev._buffer_occupancy = float(drow[DD_BUF_OCC])
        dev._buffer_last_drain_s = float(drow[DD_BUF_LAST])
        dev._writes_since_gc = int(irow[DI_WSG])
        stats.buffered_writes = int(irow[DI_BUFFERED])
    if isinstance(dev, SSDDevice):
        dev.utilization = float(drow[DD_UTIL])


class _KernelRun:
    """One lane's kernel state: the arrays, the pointer table, the
    Python-side barrier handlers."""

    def __init__(self, run, trace: TraceSoA) -> None:
        self.run = run
        self.policy = policy = run.policy
        self.hss = hss = run.hss
        self.trace = trace
        n = trace.n

        uniq = trace.touched_pages()
        self.uniq = uniq
        n_pages = len(uniq)
        dpage = np.searchsorted(uniq, trace.pages).astype(np.int64)

        buf = policy.buffer
        cap = buf.capacity
        # Preallocate the buffer's own storage at full capacity; the
        # kernel writes rows in place, so training-time gathers read
        # the live arrays.  (The serial path grows these geometrically;
        # the final export trims back to the serial length.)
        buf._obs = np.zeros((cap, 6), dtype=np.float64)
        buf._next_obs = np.zeros((cap, 6), dtype=np.float64)
        buf._actions = np.zeros(cap, dtype=np.int64)
        buf._rewards = np.zeros(cap, dtype=np.float64)
        buf._mult = np.zeros(cap, dtype=np.float64)
        rb_hashcap = _next_pow2(max(64, 2 * cap))

        hp = policy.hyperparams
        spec = policy.extractor.spec
        reward_fn = policy.reward_fn

        ci = np.zeros(_CI_LEN, dtype=np.int64)
        cd = np.zeros(_CD_LEN, dtype=np.float64)
        ci[CI_I] = 0
        ci[CI_NTOTAL] = n
        ci[CI_WARMUP] = run._warmup_end
        ci[CI_SEEN] = policy._requests_seen
        ci[CI_TRAIN_INT] = hp.train_interval
        ci[CI_BATCH] = hp.batch_size
        ci[CI_INIT_RAND] = hp.initial_random_requests
        ci[CI_CLOCK] = hss.tracker._clock
        ci[CI_CAP0] = hss.capacity_pages[0]
        ci[CI_SLACK] = hss.eviction_slack_pages
        ci[CI_HEAD0] = ci[CI_TAIL0] = ci[CI_HEAD1] = ci[CI_TAIL1] = -1
        ci[CI_RB_CAP] = cap
        ci[CI_RB_HEAD] = ci[CI_RB_TAIL] = -1
        ci[CI_RB_HASHCAP] = rb_hashcap
        ci[CI_MEMO_CAP] = _MEMO_CAP
        ci[CI_MEMO_HASHCAP] = _MEMO_CAP * 2
        ci[CI_SIZE_BINS] = spec.size_bins
        ci[CI_INTR_BINS] = spec.intr_bins
        ci[CI_CNT_BINS] = spec.cnt_bins
        ci[CI_CAP_BINS] = spec.cap_bins
        ci[CI_NDEV] = hss.n_devices
        cd[CD_COMPLETION] = run._completion_s
        cd[CD_EPS] = hp.exploration_rate
        cd[CD_UNIT] = reward_fn.unit_latency_s
        cd[CD_EVICT_COEF] = reward_fn.eviction_penalty_coefficient
        cd[CD_MAX_REWARD] = reward_fn.max_reward

        dd = np.zeros(2 * DD_STRIDE, dtype=np.float64)
        di = np.zeros(2 * DI_STRIDE, dtype=np.int64)
        for d in range(2):
            _seed_device(run, d, dd, di)

        hi = np.zeros(_HI_LEN, dtype=np.int64)
        stats = hss.stats
        hi[HI_REQUESTS] = stats.requests
        hi[HI_READS] = stats.reads
        hi[HI_WRITES] = stats.writes
        hi[HI_PROMOTED] = stats.promoted_pages
        hi[HI_DEMOTED] = stats.demoted_pages
        hi[HI_EVENTS] = stats.eviction_events
        hi[HI_EVICTED] = stats.evicted_pages
        hi[HI_PLACE0] = stats.placements[0]
        hi[HI_PLACE1] = stats.placements[1]
        hd = np.array(
            [stats.total_latency_s, stats.eviction_time_s,
             stats.last_completion_s],
            dtype=np.float64,
        )

        self.arrays = arrays = [None] * _NPTR
        arrays[P_CTRL_I] = ci
        arrays[P_CTRL_D] = cd
        arrays[P_TS] = np.ascontiguousarray(trace.timestamps)
        arrays[P_OP] = np.ascontiguousarray(trace.ops)
        arrays[P_DPAGE] = dpage
        arrays[P_SIZE] = np.ascontiguousarray(trace.sizes)
        arrays[P_UNIQ] = uniq
        arrays[P_LOC] = np.full(n_pages, -1, dtype=np.int8)
        arrays[P_LRU_PREV] = np.full(n_pages, -1, dtype=np.int32)
        arrays[P_LRU_NEXT] = np.full(n_pages, -1, dtype=np.int32)
        arrays[P_CNT] = np.zeros(n_pages, dtype=np.int64)
        arrays[P_LAST] = np.full(n_pages, -1, dtype=np.int64)
        arrays[P_MAXIMA] = np.ascontiguousarray(
            policy.extractor._maxima_arr, dtype=np.float64
        )
        arrays[P_OBS_MAIL] = np.zeros(6, dtype=np.float64)
        arrays[P_PEND_OBS] = np.zeros(6, dtype=np.float64)
        arrays[P_PEND_KEY] = np.zeros(24, dtype=np.uint8)
        arrays[P_ACTION_COUNTS] = np.asarray(policy.action_counts)
        arrays[P_RNG] = _rng_state_to_words(policy.rng)
        arrays[P_RB_OBS] = buf._obs
        arrays[P_RB_NOBS] = buf._next_obs
        arrays[P_RB_ACT] = buf._actions
        arrays[P_RB_REW] = buf._rewards
        arrays[P_RB_MULT] = buf._mult
        arrays[P_RB_KEYS] = np.zeros(cap * 51, dtype=np.uint8)
        arrays[P_RB_HASH] = np.full(rb_hashcap, -1, dtype=np.int32)
        arrays[P_RB_FPREV] = np.full(cap, -1, dtype=np.int32)
        arrays[P_RB_FNEXT] = np.full(cap, -1, dtype=np.int32)
        arrays[P_RB_FREE] = np.zeros(cap, dtype=np.int32)
        arrays[P_RB_ORDER] = np.zeros(cap, dtype=np.int64)
        arrays[P_MEMO_KEYS] = np.zeros(_MEMO_CAP * 24, dtype=np.uint8)
        arrays[P_MEMO_OBS] = np.zeros((_MEMO_CAP, 6), dtype=np.float64)
        arrays[P_MEMO_ACT] = np.zeros(_MEMO_CAP, dtype=np.int32)
        arrays[P_MEMO_HASH] = np.full(_MEMO_CAP * 2, -1, dtype=np.int32)
        arrays[P_DEV_D] = dd
        arrays[P_DEV_I] = di
        arrays[P_HSS_I] = hi
        arrays[P_HSS_D] = hd
        arrays[P_VICTIMS] = np.zeros(n_pages + 1, dtype=np.int32)
        arrays[P_VSORT] = np.zeros(n_pages + 1, dtype=np.int32)

        self.ci = ci
        self.cd = cd
        self.dd = dd
        self.di = di
        self.hi = hi
        self.hd = hd
        self.gate_total: Optional[int] = None

        ptrs = (ctypes.c_void_p * _NPTR)()
        for k, arr in enumerate(arrays):
            ptrs[k] = arr.ctypes.data_as(ctypes.c_void_p).value
        self.ptrs = ptrs

    # ------------------------------------------------------- barriers
    def _slot_key(self, slot: int) -> bytes:
        keys = self.arrays[P_RB_KEYS]
        return bytes(keys[slot * 51:(slot + 1) * 51])

    def _rebuild_entries(self) -> None:
        """Mirror the kernel's FIFO onto ``buffer._entries`` (the dedup
        map in insertion order), exactly as the serial adds left it."""
        buf = self.policy.buffer
        order = self.arrays[P_RB_ORDER][: int(self.ci[CI_ORDER_N])]
        entries: "OrderedDict[bytes, int]" = OrderedDict()
        for slot in order.tolist():
            entries[self._slot_key(slot)] = slot
        buf._entries = entries
        buf._order_cache = None
        buf._cdf_cache = None

    def _export_memo(self) -> None:
        """Mirror the kernel's action memo onto the agent's dicts, in
        insertion order (``_refresh_action_cache`` iterates it)."""
        policy = self.policy
        n = int(self.ci[CI_MEMO_N])
        keys = self.arrays[P_MEMO_KEYS]
        obs = self.arrays[P_MEMO_OBS]
        act = self.arrays[P_MEMO_ACT]
        memo = {}
        cache_obs = {}
        for k in range(n):
            key = bytes(keys[k * 24:(k + 1) * 24])
            memo[key] = int(act[k])
            cache_obs[key] = obs[k].copy()
        policy._action_cache = memo
        policy._cache_obs = cache_obs

    def _import_memo_actions(self) -> None:
        """Write the post-training action memo back into the kernel."""
        policy = self.policy
        n = int(self.ci[CI_MEMO_N])
        cache = policy._action_cache
        if len(cache) == n and n > 0:
            self.arrays[P_MEMO_ACT][:n] = np.fromiter(
                cache.values(), dtype=np.int32, count=n
            )
        elif not cache:
            # _refresh_action_cache cleared an oversized memo.
            self.ci[CI_MEMO_N] = 0
            self.arrays[P_MEMO_HASH].fill(-1)

    def handle_inference(self) -> None:
        obs = self.arrays[P_OBS_MAIL]
        self.ci[CI_ACTION] = int(self.policy.inference_net.best_action(obs))

    def handle_train_gate(self) -> None:
        policy = self.policy
        _rng_words_to_state(policy.rng, self.arrays[P_RNG])
        self._rebuild_entries()
        self._export_memo()
        self.gate_total = int(self.ci[CI_RB_TOTAL])
        policy.train_begin()
        policy.train_commit()
        self._import_memo_actions()
        self.arrays[P_RNG][:] = _rng_state_to_words(policy.rng)

    # -------------------------------------------------------- export
    def _trim_buffer_arrays(self) -> None:
        """Shrink the preallocated storage to the serial length (the
        geometric-growth schedule of ``_allocate``/``_grow``)."""
        buf = self.policy.buffer
        cap = buf.capacity
        slot_hi = int(self.ci[CI_RB_SLOT_HI])
        length = min(cap, 1024)
        while length < slot_hi:
            length = min(cap, 2 * length)
        if length < cap:
            for name in ("_obs", "_next_obs", "_actions", "_rewards", "_mult"):
                arr = getattr(buf, name)
                setattr(buf, name, arr[:length].copy())

    def export(self, lanes: Optional[LaneSoA], lane: int) -> None:
        run = self.run
        policy = self.policy
        hss = self.hss
        ci, cd = self.ci, self.cd

        run._completion_s = float(cd[CD_COMPLETION])
        run._index = int(ci[CI_NTOTAL])
        run.finished = True

        _rng_words_to_state(policy.rng, self.arrays[P_RNG])
        policy._requests_seen = int(ci[CI_SEEN])
        if ci[CI_PENDING]:
            policy._pending = (
                self.arrays[P_PEND_OBS].copy(),
                int(ci[CI_PEND_ACTION]),
                float(cd[CD_PEND_REWARD]),
                bytes(self.arrays[P_PEND_KEY]),
            )
        else:
            policy._pending = None
        self._export_memo()

        buf = policy.buffer
        self._rebuild_entries()
        buf._free = self.arrays[P_RB_FREE][: int(ci[CI_RB_FREE_N])].tolist()
        buf._total_added = int(ci[CI_RB_TOTAL])
        if self.gate_total is not None and buf._total_added == self.gate_total:
            # No mutation since the last training event: the serial
            # buffer still holds the caches that event's sampling
            # built.  Reproduce them through the same code path.
            if buf._entries:
                buf.sample_slots(1, rng=np.random.default_rng(0))
        self._trim_buffer_arrays()

        tracker = hss.tracker
        uniq = self.uniq
        cnt = self.arrays[P_CNT]
        last = self.arrays[P_LAST]
        touched = np.nonzero(last >= 0)[0]
        pages = uniq[touched].tolist()
        tracker._count = dict(zip(pages, cnt[touched].tolist()))
        tracker._last_access = dict(zip(pages, last[touched].tolist()))
        tracker._clock = int(ci[CI_CLOCK])

        table = hss.table
        loc = self.arrays[P_LOC]
        lnext = self.arrays[P_LRU_NEXT]
        mapped = np.nonzero(loc >= 0)[0]
        table._location = dict(
            zip(uniq[mapped].tolist(), loc[mapped].astype(int).tolist())
        )
        for d in range(2):
            resident = table._resident[d]
            resident.clear()
            p = int(ci[CI_HEAD0 + 2 * d])
            while p >= 0:
                resident[int(uniq[p])] = None
                p = int(lnext[p])

        stats = hss.stats
        hi, hd = self.hi, self.hd
        stats.requests = int(hi[HI_REQUESTS])
        stats.reads = int(hi[HI_READS])
        stats.writes = int(hi[HI_WRITES])
        stats.promoted_pages = int(hi[HI_PROMOTED])
        stats.demoted_pages = int(hi[HI_DEMOTED])
        stats.eviction_events = int(hi[HI_EVENTS])
        stats.evicted_pages = int(hi[HI_EVICTED])
        stats.placements = [int(hi[HI_PLACE0]), int(hi[HI_PLACE1])]
        stats.total_latency_s = float(hd[HD_TOTAL_LAT])
        stats.eviction_time_s = float(hd[HD_EVICT_TIME])
        stats.last_completion_s = float(hd[HD_LAST_COMPLETION])

        for d in range(2):
            _writeback_device(run, d, self.dd, self.di)

        if lanes is not None:
            lanes.snapshot(lane, run, float(cd[CD_REWARD_SUM]))


def run_one_c(
    run, lanes: Optional[LaneSoA] = None, lane: int = 0, sink=None
) -> None:
    """Drive one eligible ``PolicyRun`` to completion through the
    compiled kernel, bit-identically to serial ``run_policy``.

    ``sink`` receives the engine counters (see ``run_kernel_lanes``);
    the barrier statuses the C loop returns are counted for free in the
    dispatch loop below, so ``kernel_barriers`` prices the Python
    boundary exactly.
    """
    lib = _load()
    trace = TraceSoA.from_run(run)
    if lib is None or not _kernel_ready(run, trace):
        from .engine_numpy import run_one_numpy

        run._iter = iter(trace.requests)
        run_one_numpy(run, lanes=lanes, lane=lane, sink=sink)
        return

    state = _KernelRun(run, trace)
    n_inference = 0
    n_train = 0
    with _span("kernel.invoke", cat="kernel", lane=lane, requests=trace.n):
        while True:
            status = lib.sib_run(state.ptrs)
            if status == _ST_DONE:
                break
            if status == _ST_NEED_INFERENCE:
                n_inference += 1
                state.handle_inference()
            elif status == _ST_TRAIN_GATE:
                n_train += 1
                state.handle_train_gate()
            else:
                raise RuntimeError(
                    "compiled tick kernel aborted "
                    f"(err={int(state.ci[CI_ERR])}, i={int(state.ci[CI_I])})"
                )
    state.export(lanes, lane)
    if sink is not None:
        sink.count("ticks", trace.n)
        if n_inference:
            sink.count("fused_forwards", n_inference)
            sink.count("fused_rows", n_inference)
            sink.record_max("max_fused_rows", 1)
        sink.count("train_events", n_train)
        sink.count("kernel_barriers", n_inference + n_train)


def run_lanes_c(runs: List, lanes: Optional[LaneSoA] = None, sink=None) -> LaneSoA:
    """Drive every run to completion through the compiled engine."""
    if lanes is None:
        lanes = LaneSoA.for_runs(runs)
    for lane, run in enumerate(runs):
        run_one_c(run, lanes=lanes, lane=lane, sink=sink)
    return lanes
