"""Structure-of-arrays tick engine with selectable compute backends.

The lane engine's per-request cost is dominated by everything *around*
the network forward: feature extraction, the HSS serve/evict state
machine, reward computation, and replay insertion all walk per-lane
Python objects.  This package removes that ceiling for the common
configuration (a :class:`~repro.core.agent.SibylAgent` on a dual-device
LRU system with the paper's full feature set and latency reward) by
holding the per-tick state — observations, quantised feature bins,
device queue depths/utilisation, the page→device mapping, per-lane
reward accumulators — in contiguous arrays (:mod:`.soa`) and executing
the tick loop through one of two interchangeable engines:

* ``numpy`` (:mod:`.engine_numpy`) — the **bit-identity reference**: a
  straight-line transliteration of the serial ``run_policy`` loop over
  the SoA state, with the interpreter overhead (method dispatch,
  dataclass construction, per-request object traffic) shaved off.  It
  executes exactly the floating-point operations of the serial path, in
  the same order, against the same live Python objects, so equality to
  ``run_policy`` is structural, not coincidental.
* ``cext`` (:mod:`.engine_c`) — a compiled C kernel (built on demand
  with the system C compiler) that owns the whole tick loop between
  *barriers*: network inference on an action-memo miss and the periodic
  training event stay in Python, executing the identical serial code
  paths, while everything else — PCG64 exploration draws, feature
  binning, device latency models, LRU eviction, replay dedup — runs in
  C with bit-identical arithmetic.

Backend selection goes through the ``SIBYL_BACKEND`` knob (parsed by
:func:`repro.sim.lanes.resolve_choice_env`):

* ``auto`` (default) — compiled kernel if the toolchain can build it,
  else **silently** the NumPy engine (the fallback must never change
  results, only wall-clock);
* ``numpy`` — force the reference engine;
* ``cext`` — require the compiled kernel (raises if unavailable);
* ``off`` — disable the SoA engine; lanes run through the lockstep
  batched engine of :mod:`repro.sim.lanes` unchanged.

Either way, results are bit-identical to serial ``run_policy`` — the
same contract the lockstep engine carries, asserted by
``tests/sim/test_soa.py``.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = [
    "BACKEND_ENV",
    "BACKENDS",
    "resolve_backend",
    "get_backend",
    "kernel_eligible",
    "run_kernel_lanes",
]

#: Environment knob: which tick-engine backend ``run_lanes`` uses for
#: eligible Sibyl lanes (``auto`` / ``numpy`` / ``cext`` / ``off``).
BACKEND_ENV = "SIBYL_BACKEND"

#: The valid ``SIBYL_BACKEND`` values.
BACKENDS = ("auto", "numpy", "cext", "off")


def resolve_backend(default: str = "auto") -> str:
    """The backend name from ``SIBYL_BACKEND`` (validated, lowered)."""
    from ..lanes import resolve_choice_env

    return resolve_choice_env(BACKEND_ENV, default, BACKENDS)


def get_backend(name: Optional[str] = None) -> Optional[str]:
    """Resolve ``name`` (or the environment) to a concrete engine.

    Returns ``"numpy"``, ``"cext"``, or ``None`` (= engine disabled).
    ``auto`` probes the compiled kernel and falls back to the NumPy
    engine *silently* — by contract the two are bit-identical, so the
    fallback can never change a result, only wall-clock time.  An
    explicit ``cext`` request raises when the kernel cannot be built,
    because the caller asked for a specific implementation.
    """
    if name is None:
        name = resolve_backend()
    if name not in BACKENDS:
        raise ValueError(
            f"unknown backend {name!r}; valid: {', '.join(BACKENDS)}"
        )
    if name == "off":
        return None
    if name == "numpy":
        return "numpy"
    from . import engine_c

    if engine_c.available():
        return "cext"
    if name == "cext":
        raise RuntimeError(
            "SIBYL_BACKEND=cext requested but the compiled kernel is "
            f"unavailable: {engine_c.unavailable_reason()}"
        )
    return "numpy"  # auto: silent reference fallback


def kernel_eligible(run) -> bool:
    """True when ``run`` matches the configuration the kernels compile.

    The SoA engines implement the paper's default configuration: a
    :class:`~repro.core.agent.SibylAgent` with the full feature set and
    the Eq. 1 latency reward, on a two-device HSS (SSD/HDD models) with
    a bounded fast device, an unbounded slow device, and LRU victim
    selection.  Anything else — feature ablations, tri-HSS, alternative
    rewards or selectors — takes the lockstep engine, which handles any
    policy.  The gate is deliberately exact (``type`` checks, not
    ``isinstance``): a subclass may override any hook the kernels
    inline.
    """
    from ...core.agent import SibylAgent
    from ...core.features import FEATURE_SETS
    from ...core.reward import LatencyReward
    from ...hss.eviction import LRUVictimSelector
    from ...hss.hdd import HDDDevice
    from ...hss.ssd import SSDDevice

    policy = run.policy
    if type(policy) is not SibylAgent:
        return False
    hss = run.hss
    if hss.n_devices != 2 or hss.capacity_pages[1] is not None:
        return False
    if hss.capacity_pages[0] is None:
        return False
    if type(hss.victim_selector) is not LRUVictimSelector:
        return False
    if any(type(d) not in (SSDDevice, HDDDevice) for d in hss.devices):
        return False
    if policy.extractor is None or policy.reward_fn is None:
        return False
    if policy.extractor.features is not FEATURE_SETS["all"]:
        return False
    if type(policy.reward_fn) is not LatencyReward:
        return False
    if policy.external_training or policy.train_pending:
        return False
    if len(policy.buffer) != 0 or run._index != 0:
        return False
    return True


def run_kernel_lanes(runs: List, backend: Optional[str] = None, sink=None) -> List:
    """Drive the eligible lanes of ``runs`` to completion; return the rest.

    ``backend`` overrides the environment knob.  With the engine
    disabled (``off``) every run is returned for the caller's lockstep
    path.  Lanes share no state, so they are executed one after another;
    each finishes bit-identical to a serial ``run_policy``.

    ``sink`` (an :class:`repro.obs.sink.ObservationSink`) receives the
    same tick-domain counters the lockstep engine emits — per-lane
    ``ticks``, one-row ``fused_forwards``/``fused_rows``,
    ``train_events`` — plus ``kernel_barriers``, the number of
    Python-boundary crossings (inference + train gates) the SoA engines
    paid.
    """
    engine = get_backend(backend)
    if engine is None:
        return list(runs)
    eligible = [run for run in runs if kernel_eligible(run)]
    if not eligible:
        return list(runs)
    if engine == "cext":
        from .engine_c import run_lanes_c as run_batch
    else:
        from .engine_numpy import run_lanes_numpy as run_batch
    run_batch(eligible, sink=sink)
    chosen = set(map(id, eligible))
    return [run for run in runs if id(run) not in chosen]
