"""The NumPy/SoA reference engine: serial semantics, flattened hot loop.

This engine is the **bit-identity reference** for the backend layer: it
executes, per lane, exactly the floating-point operations of serial
``run_policy`` in exactly the same order, against the same live Python
objects (the agent's RNG, replay buffer, action memo, the HSS page
table and device models).  What it removes is everything *around* those
operations — the method-dispatch chain
``step → place → observe_keyed → serve → access → service_time →
feedback → reward``, the per-request ``ServeResult`` construction, and
repeated attribute lookups — by inlining the whole tick into one loop
over the lane's :class:`~repro.sim.kernels.soa.TraceSoA` columns.

Rules of the transliteration (shared with the compiled engine):

* ``min(a, b)`` / ``max(a, b)`` become the exact conditional
  expressions Python's builtins evaluate (``b if b < a else a``), so
  tie and signed-zero behaviour is preserved.
* Expressions keep the source's association: ``elapsed * bw / 4096.0``
  stays ``(elapsed * bw) / 4096.0`` — never pre-reduced to
  ``elapsed * rate``, which rounds differently.
* Anything rare stays a call into the original code: eviction cascades
  run through ``HybridStorageSystem._ensure_capacity``, training events
  through the agent's own ``train_begin``/``train_commit`` — the
  reference never forks logic it doesn't need to.

Because lanes share no state, runs execute to completion one after
another; lockstep buys nothing here and per-lane execution keeps every
lane trivially bit-identical to its own serial replay.
"""

from __future__ import annotations

import math
from typing import List, Optional

import numpy as np

from ...core.features import log2_bin
from ...hss.hdd import HDDDevice
from ...hss.request import OpType
from .soa import LaneSoA, TraceSoA

__all__ = ["run_lanes_numpy", "run_one_numpy"]

_WRITE = OpType.WRITE
_READ = OpType.READ

#: Memo-size bound shared with ``FeatureExtractor`` (1 << 16).
_CACHE_LIMIT = 1 << 16


def run_lanes_numpy(runs: List, lanes: Optional[LaneSoA] = None, sink=None) -> LaneSoA:
    """Drive every run to completion through the reference engine."""
    if lanes is None:
        lanes = LaneSoA.for_runs(runs)
    for lane, run in enumerate(runs):
        run_one_numpy(run, lanes=lanes, lane=lane, sink=sink)
    return lanes


def _device_access(dev):
    """(foreground read, foreground write, background write) closures
    for ``dev``, each ``(now, first_page, n_pages) -> latency``.

    Each closure performs ``_point_head`` + ``StorageDevice.access`` (or
    ``background_access``) + the device's ``service_time`` in one call,
    computing the identical float expressions in the identical order.
    """
    stats = dev.stats
    bi = dev.background_interference
    spec = dev.spec

    if isinstance(dev, HDDDevice):
        config = dev.config
        seq_window = config.sequential_window_pages
        track_span = config.track_span_pages
        avg_rot = config.avg_rotational_s
        min_seek = config.min_seek_s
        seek_span = config.max_seek_s - config.min_seek_s
        cap_pages = max(1, spec.capacity_pages)
        read_overhead = spec.read_overhead_s
        write_overhead = spec.write_overhead_s
        read_bw = spec.read_bandwidth_bps
        write_bw = spec.write_bandwidth_bps
        sqrt = math.sqrt

        def _service(page, n, overhead, bw):
            # _point_head + HDDDevice.service_time (head advanced).
            dev.target_page = page
            delta = page - dev._head_page
            if 0 <= delta <= seq_window:
                positioning = 0.0
            else:
                distance = abs(delta)
                if distance <= track_span:
                    positioning = avg_rot
                else:
                    frac = distance / cap_pages
                    frac = frac if frac < 1.0 else 1.0
                    seek = min_seek + seek_span * sqrt(frac)
                    positioning = seek + avg_rot
            dev._head_page = page + n
            return positioning + overhead + (n * 4096) / bw

        def fg_read(now, page, n):
            nf = dev._next_free_s
            start = nf if nf > now else now
            service = _service(page, n, read_overhead, read_bw)
            dev._next_free_s = start + service
            stats.queue_wait_s += start - now
            stats.busy_time_s += service
            stats.reads += 1
            stats.pages_read += n
            return (start - now) + service

        def fg_write(now, page, n):
            nf = dev._next_free_s
            start = nf if nf > now else now
            service = _service(page, n, write_overhead, write_bw)
            dev._next_free_s = start + service
            stats.queue_wait_s += start - now
            stats.busy_time_s += service
            stats.writes += 1
            stats.pages_written += n
            return (start - now) + service

        def bg_write(now, page, n):
            nf = dev._next_free_s
            start = nf if nf > now else now
            service = _service(page, n, write_overhead, write_bw)
            dev._next_free_s = start + bi * service
            stats.busy_time_s += service
            stats.pages_written += n
            return service

        return fg_read, fg_write, bg_write

    # SSD (type-gated by kernel_eligible, so nothing else reaches here).
    config = dev.config
    read1 = dev._read_1pg_s
    read_overhead = spec.read_overhead_s
    read_bw = spec.read_bandwidth_bps
    write_bw = spec.write_bandwidth_bps
    gc_threshold = config.gc_threshold
    gc_trigger = config.gc_trigger_pages
    gc_latency = config.gc_latency_s
    gc_over_denom = max(1e-9, 1.0 - config.gc_threshold)
    buffer_pages = config.buffer_pages
    buffered_lat = config.buffered_write_latency_s
    tr_unit = 4096.0 / write_bw
    write_overhead = spec.write_overhead_s

    def _write_service(start, n):
        # SSDDevice.service_time's write path.
        elapsed = start - dev._buffer_last_drain_s
        if elapsed > 0.0:
            occupancy = dev._buffer_occupancy - elapsed * write_bw / 4096.0
            dev._buffer_occupancy = occupancy if occupancy > 0.0 else 0.0
        dev._buffer_last_drain_s = start

        if dev.utilization < gc_threshold:
            dev._writes_since_gc = 0
            stall = 0.0
        else:
            writes = dev._writes_since_gc + n
            if writes < gc_trigger:
                dev._writes_since_gc = writes
                stall = 0.0
            else:
                cycles = writes // gc_trigger
                dev._writes_since_gc = writes % gc_trigger
                over = (dev.utilization - gc_threshold) / gc_over_denom
                stall = cycles * gc_latency * (1.0 + 3.0 * over)
                stats.gc_events += cycles
                stats.gc_time_s += stall

        occupancy = dev._buffer_occupancy
        if buffer_pages > 0 and occupancy + n <= buffer_pages:
            dev._buffer_occupancy = occupancy + n
            stats.buffered_writes += 1
            base = buffered_lat + n * tr_unit * 0.25
        else:
            base = write_overhead + (n * 4096) / write_bw
        return base + stall

    def fg_read(now, page, n):
        service = read1 if n == 1 else read_overhead + (n * 4096) / read_bw
        nf = dev._next_free_s
        start = nf if nf > now else now
        dev._next_free_s = start + service
        stats.queue_wait_s += start - now
        stats.busy_time_s += service
        stats.reads += 1
        stats.pages_read += n
        return (start - now) + service

    def fg_write(now, page, n):
        nf = dev._next_free_s
        start = nf if nf > now else now
        service = _write_service(start, n)
        dev._next_free_s = start + service
        stats.queue_wait_s += start - now
        stats.busy_time_s += service
        stats.writes += 1
        stats.pages_written += n
        return (start - now) + service

    def bg_write(now, page, n):
        nf = dev._next_free_s
        start = nf if nf > now else now
        service = _write_service(start, n)
        dev._next_free_s = start + bi * service
        stats.busy_time_s += service
        stats.pages_written += n
        return service

    return fg_read, fg_write, bg_write


def _make_update_util(hss, device):
    """``_update_utilization(device)`` as a zero-argument closure."""
    dev = hss._ssd[device]
    if dev is None:

        def update():
            return None

        return update
    resident = hss.table._resident[device]
    cap = hss._util_cap[device]

    def update():
        v = len(resident) / cap
        dev.utilization = v if v < 1.0 else 1.0

    return update


def run_one_numpy(
    run, lanes: Optional[LaneSoA] = None, lane: int = 0, sink=None
) -> None:
    """Drive one eligible ``PolicyRun`` to completion, bit-identically.

    The body is the serial loop ``step() → place → serve → feedback``
    with every layer inlined; see the module docstring for the
    transliteration rules.  The run's own objects are mutated
    throughout, so ``run.result()`` and all post-run state (weights,
    optimizer moments, replay contents, memo, RNG) are exactly what the
    serial path produces.

    ``sink`` receives the engine counters after the loop: tick-domain
    integers accumulated in plain locals, so observation adds nothing
    to the per-request path (and nothing to the float stream).
    """
    policy = run.policy
    hss = run.hss
    trace = TraceSoA.from_run(run)

    # ---- agent locals -------------------------------------------------
    hp = policy.hyperparams
    train_interval = hp.train_interval
    batch_size = hp.batch_size
    initial_random = hp.initial_random_requests
    eps = hp.exploration_rate
    n_devices = hss.n_devices
    rng_random = policy.rng.random
    rng_integers = policy.rng.integers
    best_action = policy.inference_net.best_action
    memo = policy._action_cache
    cache_obs = policy._cache_obs
    action_counts = policy.action_counts
    buffer_add = policy.buffer.add
    entries = policy.buffer._entries
    pending = policy._pending
    seen = policy._requests_seen

    # ---- extractor locals ---------------------------------------------
    extractor = policy.extractor
    spec = extractor.spec
    size_bins = spec.size_bins
    intr_bins = spec.intr_bins
    cnt_bins = spec.cnt_bins
    cap_bins = spec.cap_bins
    size_cache = extractor._size_bin_cache
    intr_cache = extractor._intr_bin_cache
    cnt_cache = extractor._cnt_bin_cache
    obs_cache = extractor._obs_cache
    maxima = extractor._maxima_arr
    inf = float("inf")

    # ---- reward locals ------------------------------------------------
    reward_fn = policy.reward_fn
    unit = reward_fn.unit_latency_s
    evict_coef = reward_fn.eviction_penalty_coefficient
    max_reward = reward_fn.max_reward

    # ---- HSS locals ---------------------------------------------------
    table = hss.table
    loc_map = table._location
    resident = table._resident
    res_fast = resident[0]
    slowest = hss.slowest
    res_slow = resident[slowest]
    devices = hss.devices
    ensure_capacity = hss._ensure_capacity
    cap_fast = hss.capacity_pages[0]
    tracker = hss.tracker
    count = tracker._count
    last_access = tracker._last_access
    clock = tracker._clock
    stats = hss.stats
    placements = stats.placements
    access = [_device_access(dev) for dev in devices]
    fg_read = [a[0] for a in access]
    fg_write = [a[1] for a in access]
    bg_write = [a[2] for a in access]
    upd_util = [_make_update_util(hss, d) for d in range(n_devices)]

    # ---- trace columns ------------------------------------------------
    ts_l = trace.timestamps.tolist()
    op_l = trace.ops.tolist()
    page_l = trace.pages.tolist()
    size_l = trace.sizes.tolist()
    n_total = trace.n

    completion_s = run._completion_s
    warmup_end = run._warmup_end
    reward_sum = 0.0
    n_forwards = 0
    n_train = 0

    for i in range(n_total):
        # _fetch(): warmup-window reset before request warmup_end serves.
        if i == warmup_end and i > 0:
            stats.reset(n_devices)
            placements = stats.placements
            for dev in devices:
                dev.stats.reset()
            reward_sum = 0.0

        now = ts_l[i]
        page = page_l[i]
        size = size_l[i]
        is_wr = op_l[i]

        # ---- place_begin: observe_keyed (features._bins_all) ----------
        size_bin = size_cache.get(size)
        if size_bin is None:
            size_bin = log2_bin(size, size_bins)
            size_cache[size] = size_bin

        last = last_access.get(page)
        interval = inf if last is None else clock - last
        intr_bin = intr_cache.get(interval)
        if intr_bin is None:
            intr_bin = log2_bin(interval, intr_bins)
            if len(intr_cache) < _CACHE_LIMIT:
                intr_cache[interval] = intr_bin

        cnt = count.get(page, 0) + 1
        cnt_bin = cnt_cache.get(cnt)
        if cnt_bin is None:
            cnt_bin = log2_bin(cnt, cnt_bins)
            cnt_cache[cnt] = cnt_bin

        frac = (cap_fast - len(res_fast)) / cap_fast
        if frac >= 1.0:
            cap_bin = cap_bins - 1
        elif frac <= 0.0:
            cap_bin = 0
        else:
            cap_bin = int(frac * cap_bins)

        loc = loc_map.get(page)
        bins = (
            size_bin,
            is_wr,
            intr_bin,
            cnt_bin,
            cap_bin,
            1 if loc is None else loc,
        )
        hit = obs_cache.get(bins)
        if hit is None:
            obs = np.array(bins, dtype=np.float64) / maxima
            hit = (obs, obs.astype(np.float32).tobytes())
            if len(obs_cache) < _CACHE_LIMIT:
                obs_cache[bins] = hit
        obs, obs_key = hit

        # ---- place_begin: close the previous transition ---------------
        if pending is not None:
            buffer_add(
                pending[0], pending[1], pending[2], obs,
                obs_bytes=pending[3], next_obs_bytes=obs_key,
            )
            pending = None

        # ---- ε-greedy decision + place_commit -------------------------
        if seen < initial_random:
            action = int(rng_integers(0, n_devices))
        elif rng_random() < eps:
            action = int(rng_integers(0, n_devices))
        else:
            action = memo.get(obs_key)
            if action is None:
                action = int(best_action(obs))
                memo[obs_key] = action
                cache_obs[obs_key] = obs
                n_forwards += 1
        action_counts[action] += 1

        # ---- _complete(): closed-loop issue-time clamp ----------------
        if now < completion_s:
            now = completion_s

        # ---- HybridStorageSystem.serve, inlined -----------------------
        eviction_time = 0.0
        promoted = 0
        demoted = 0
        res_act = resident[action]

        if is_wr:
            # One pass: count incoming pages, protect rewrites (= MRU).
            incoming = 0
            if size == 1:
                end = page + 1
                if loc == action:
                    res_act.move_to_end(page)
                else:
                    incoming = 1
            else:
                end = page + size
                for p in range(page, end):
                    if loc_map.get(p) == action:
                        res_act.move_to_end(p)
                    else:
                        incoming += 1
            if incoming > 0:
                eviction_time += ensure_capacity(action, incoming, now)
            latency = fg_write[action](now, page, size)
            for p in range(page, end):
                prev = loc_map.get(p)  # table.place(p, action)
                if prev is None:
                    loc_map[p] = action
                    res_act[p] = None
                elif prev == action:
                    res_act.move_to_end(p)
                else:
                    del resident[prev][p]
                    loc_map[p] = action
                    res_act[p] = None
            upd_util[action]()
        else:
            end = page + size
            if size == 1:
                if loc is None:
                    loc = slowest
                    loc_map[page] = loc
                    res_slow[page] = None
                latency = fg_read[loc](now, page, 1)
                resident[loc].move_to_end(page)
                if loc != action:
                    eviction_time += ensure_capacity(action, 1, now)
                    bg_write[action](now, page, 1)
                    if action < loc:
                        promoted = 1
                    else:
                        demoted = 1
                    del resident[loc][page]
                    loc_map[page] = action
                    res_act[page] = None
                    upd_util[loc]()
                    upd_util[action]()
            else:
                # Lazily map never-seen pages to the slowest device,
                # then group residency per device for access latency.
                groups = {}
                for p in range(page, end):
                    p_loc = loc_map.get(p)
                    if p_loc is None:
                        p_loc = slowest
                        loc_map[p] = slowest
                        res_slow[p] = None
                    group = groups.get(p_loc)
                    if group is None:
                        groups[p_loc] = [p]
                    else:
                        group.append(p)
                latency = 0.0
                for dev_idx in sorted(groups):
                    dev_pages = groups[dev_idx]
                    lat = fg_read[dev_idx](now, dev_pages[0], len(dev_pages))
                    if lat >= latency:
                        latency = lat
                    res_d = resident[dev_idx]
                    for p in dev_pages:
                        res_d.move_to_end(p)
                # Apply the action: migrate non-resident pages.
                if len(groups) > 1 or action not in groups:
                    to_move = [
                        p for p in range(page, end) if loc_map[p] != action
                    ]
                else:
                    to_move = ()
                if to_move:
                    sources = {}
                    for p in to_move:
                        src = loc_map[p]
                        group = sources.get(src)
                        if group is None:
                            sources[src] = [p]
                        else:
                            group.append(p)
                    eviction_time += ensure_capacity(
                        action, len(to_move), now
                    )
                    for src in sorted(sources):
                        src_pages = sources[src]
                        bg_write[action](now, src_pages[0], len(src_pages))
                        if action < src:
                            promoted += len(src_pages)
                        else:
                            demoted += len(src_pages)
                        res_s = resident[src]
                        for p in src_pages:  # table.move(p, action)
                            del res_s[p]
                            loc_map[p] = action
                            res_act[p] = None
                        upd_util[src]()
                    upd_util[action]()

        # tracker.record(p) for every touched page + the stats tail.
        if size == 1:
            count[page] = cnt
            last_access[page] = clock
            clock += 1
        else:
            for p in range(page, end):
                count[p] = count.get(p, 0) + 1
                last_access[p] = clock
                clock += 1
        stats.requests += 1
        if is_wr:
            stats.writes += 1
        else:
            stats.reads += 1
        stats.total_latency_s += latency
        stats.eviction_time_s += eviction_time
        stats.promoted_pages += promoted
        stats.demoted_pages += demoted
        placements[action] += 1
        completion = now + latency
        if completion > stats.last_completion_s:
            stats.last_completion_s = completion

        completion_s = now + latency

        # ---- feedback: LatencyReward (Eq. 1) ---------------------------
        lat_units = latency / unit
        lat_units = lat_units if lat_units > 1e-9 else 1e-9
        inv = 1.0 / lat_units
        base = inv if inv < max_reward else max_reward
        if eviction_time > 0.0:
            r = base - evict_coef * (eviction_time / unit)
            reward = r if r > 0.0 else 0.0
        else:
            reward = base
        reward_sum += reward

        pending = (obs, action, reward, obs_key)
        seen += 1
        if seen % train_interval == 0 and len(entries) >= batch_size:
            policy.train_begin()
            policy.train_commit()
            n_train += 1
            # train_commit rebinds the agent's action memo; re-bind the
            # loop's references (the inference net is mutated in place,
            # but re-bind it too so that stays a non-assumption).
            memo = policy._action_cache
            cache_obs = policy._cache_obs
            best_action = policy.inference_net.best_action

    # ---- write the loop-local state back ------------------------------
    run._completion_s = completion_s
    run._index = n_total
    run.finished = True
    policy._pending = pending
    policy._requests_seen = seen
    tracker._clock = clock
    if lanes is not None:
        lanes.snapshot(lane, run, reward_sum)
    if sink is not None:
        # Same names the lockstep engine emits; a SoA lane is its own
        # tick stream, and every forward carries exactly one row.
        sink.count("ticks", n_total)
        if n_forwards:
            sink.count("fused_forwards", n_forwards)
            sink.count("fused_rows", n_forwards)
            sink.record_max("max_fused_rows", 1)
        sink.count("train_events", n_train)
        sink.count("kernel_barriers", n_forwards + n_train)
