"""Simulation harness: runners, experiment sweeps, and reporting."""

from .adaptation import WindowMetrics, run_with_timeline
from .experiment import (
    DEFAULT_WARMUP,
    ORACLE_HORIZONS,
    buffer_size_sweep,
    capacity_sweep,
    compare_policies,
    feature_ablation,
    hyperparameter_sweep,
    mixed_workload_comparison,
    run_oracle_best,
    standard_policies,
    tri_hybrid_comparison,
    unseen_workload_comparison,
)
from .lanes import LaneSpec, run_lanes
from .parallel import Cell, run_grid, run_many
from .report import format_series, format_table, geomean
from .runner import (
    PolicyRun,
    RunResult,
    build_hss,
    run_normalized,
    run_policy,
    run_reference,
)

__all__ = [
    "Cell",
    "DEFAULT_WARMUP",
    "LaneSpec",
    "ORACLE_HORIZONS",
    "PolicyRun",
    "RunResult",
    "WindowMetrics",
    "buffer_size_sweep",
    "build_hss",
    "capacity_sweep",
    "compare_policies",
    "feature_ablation",
    "format_series",
    "format_table",
    "geomean",
    "hyperparameter_sweep",
    "mixed_workload_comparison",
    "run_grid",
    "run_lanes",
    "run_many",
    "run_normalized",
    "run_oracle_best",
    "run_policy",
    "run_reference",
    "run_with_timeline",
    "standard_policies",
    "tri_hybrid_comparison",
    "unseen_workload_comparison",
]
