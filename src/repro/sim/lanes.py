"""Multi-lane batched inference engine: N independent runs in lockstep.

PR 1's parallel engine fans (policy × trace × config × seed) cells
across *processes*; inside a process each cell still replayed its trace
strictly one request at a time, so the tiny per-request network forward
dominated the Sibyl loop.  This module removes that ceiling **within**
a process: a *lane* is one resumable :class:`~repro.sim.runner.PolicyRun`,
and :func:`run_lanes` advances all lanes in lockstep — each tick it

1. runs every RL lane's pre-inference half
   (:meth:`~repro.core.agent.SibylAgent.place_begin`: feature
   extraction, replay insertion, per-lane ε-greedy draw, action-memo
   lookup),
2. gathers the observations of the lanes that actually need inference
   into one batch and runs **one fused forward** through the stacked
   per-lane weights (:class:`~repro.rl.c51.C51LaneStack` /
   :class:`~repro.rl.dqn.DQNLaneStack`),
3. scatters the greedy actions back
   (:meth:`~repro.core.agent.SibylAgent.place_commit`) and completes
   each lane's serve + feedback, while heuristic-policy lanes step
   without any inference cost.

Training stays strictly per-lane — every lane keeps its own replay
buffer, network weights, and seeded RNG — and after a lane's periodic
training→inference weight copy only that lane's slice of the stack is
re-synced.

The hard guarantee (asserted by ``tests/sim/test_lanes.py``): every
lane's result is **bit-identical** to a serial ``run_policy`` of the
same (policy, trace, config, seed).  Lanes share no state; the fused
forward computes, per lane, exactly the floating-point operations the
serial decision path computes.

Composition with PR 1: ``run_many`` distributes cells across processes
(``SIBYL_PARALLEL``), and each worker packs ``SIBYL_LANES`` cells per
task; within a cell every policy of a ``run_normalized`` lineup rides
its own lane.  Throughput multiplies: cores × lanes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..baselines.base import PlacementPolicy
from ..hss.request import Request
from ..hss.system import HybridStorageSystem
from ..rl.c51 import C51LaneStack, C51Network
from ..rl.dqn import DQNLaneStack, DQNNetwork
from ..rl.network import NetworkLaneStack
from .runner import LANE_DONE, PolicyRun, RunResult

__all__ = ["LaneSpec", "run_lanes", "resolve_lanes", "LANES_ENV"]

#: Environment knob: how many sweep cells each parallel worker packs
#: into one task (see :func:`repro.sim.parallel.run_many`), and the
#: default lane count of the hot-path benchmark's multi-lane section.
LANES_ENV = "SIBYL_LANES"


def resolve_lanes(default: int = 1) -> int:
    """Lane/pack count from the ``SIBYL_LANES`` environment variable.

    ``auto``/unset → ``default``; ``0`` and ``1`` both mean "no
    packing"; anything else must be a positive integer (a negative
    value is a misconfiguration and raises rather than silently
    disabling packing).
    """
    raw = os.environ.get(LANES_ENV, "").strip().lower()
    if raw in ("", "auto"):
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ValueError(
            f"{LANES_ENV} must be 'auto' or a non-negative integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"{LANES_ENV} must be >= 0, got {value}")
    return max(1, value)


@dataclass
class LaneSpec:
    """One lane: the arguments of a serial ``run_policy`` call."""

    policy: PlacementPolicy
    trace: Union[Sequence[Request], Iterable[Request]]
    config: str = "H&M"
    capacity_fractions: Optional[Sequence[float]] = None
    hss: Optional[HybridStorageSystem] = None
    max_requests: Optional[int] = None
    warmup_fraction: float = 0.0

    def make_run(self) -> PolicyRun:
        return PolicyRun(
            self.policy,
            self.trace,
            config=self.config,
            capacity_fractions=self.capacity_fractions,
            hss=self.hss,
            max_requests=self.max_requests,
            warmup_fraction=self.warmup_fraction,
        )


class _LaneGroup:
    """RL lanes sharing one network architecture → one fused stack."""

    def __init__(self, runs: List[PolicyRun]) -> None:
        self.runs = runs
        nets = [run.policy.inference_net for run in runs]
        if isinstance(nets[0], C51Network):
            self.stack = C51LaneStack(nets)
        else:
            self.stack = DQNLaneStack(nets)
        # Zeros, not empty: rows of finished/exploring lanes are fed
        # through the fused forward and discarded; stale-but-finite
        # values keep the maths warning-free.
        self.obs = np.zeros((len(runs), self.stack.in_features))
        # Per-lane train-event counters: a change means the lane copied
        # fresh weights into its inference network and its stack slice
        # must be re-synced before the next fused forward.
        self.train_seen = [
            getattr(run.policy, "train_events", 0) for run in runs
        ]
        self.pending: List[Tuple[PolicyRun, int]] = []

    def resync(self) -> None:
        for row, run in enumerate(self.runs):
            events = run.policy.train_events
            if events != self.train_seen[row]:
                self.train_seen[row] = events
                self.stack.refresh(row)


def _group_signature(policy) -> tuple:
    net = policy.inference_net
    arch = NetworkLaneStack.signature(net.network)
    if isinstance(net, C51Network):
        return ("c51", arch, net.config.n_actions, net.config.n_atoms)
    return ("dqn", arch)


def run_lanes(specs: Sequence[LaneSpec]) -> List[RunResult]:
    """Advance all lanes in lockstep; results in spec order.

    Each lane is bit-identical to ``run_policy`` with the same spec —
    the engine only changes *when* each lane's work happens (interleaved
    per tick) and *how* RL greedy inference is computed (one fused
    forward per tick across lanes instead of one forward per lane).
    """
    runs = [spec.make_run() for spec in specs]

    # Partition: lanes whose policy exposes the externally-driven
    # inference hook (SibylAgent) *and* a head the stacks know how to
    # fuse ride the batched path; everything else — heuristics, oracle,
    # extremes, or a future head type with its own decision rule — steps
    # through the plain per-lane path, which is correct for any policy.
    rl_runs: List[PolicyRun] = []
    plain_runs: List[PolicyRun] = []
    for run in runs:
        policy = run.policy
        if callable(getattr(policy, "place_begin", None)) and isinstance(
            getattr(policy, "inference_net", None), (C51Network, DQNNetwork)
        ):
            rl_runs.append(run)
        else:
            plain_runs.append(run)

    by_signature: Dict[tuple, List[PolicyRun]] = {}
    for run in rl_runs:
        by_signature.setdefault(_group_signature(run.policy), []).append(run)
    groups = [_LaneGroup(members) for members in by_signature.values()]
    group_row: Dict[int, Tuple[_LaneGroup, int]] = {}
    for group in groups:
        for row, run in enumerate(group.runs):
            group_row[id(run)] = (group, row)

    active_plain = list(plain_runs)
    active_rl = list(rl_runs)
    while active_plain or active_rl:
        if active_plain:
            active_plain = [run for run in active_plain if run.step()]
        if active_rl:
            next_rl: List[PolicyRun] = []
            for run in active_rl:
                obs = run.step_begin()
                if obs is LANE_DONE:
                    continue
                next_rl.append(run)
                # obs None: exploration draw or action-memo hit — the
                # step already completed inline inside step_begin.
                if obs is not None:
                    group, row = group_row[id(run)]
                    group.obs[row] = obs
                    group.pending.append((run, row))
            for group in groups:
                if group.pending:
                    actions = group.stack.best_actions(group.obs)
                    for run, row in group.pending:
                        run.step_finish(int(actions[row]))
                    group.pending.clear()
            # Re-sync stack slices of lanes that trained this tick (the
            # weight copy happens inside feedback, after the forward).
            for group in groups:
                group.resync()
            active_rl = next_rl

    return [run.result() for run in runs]
