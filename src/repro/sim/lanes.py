"""Multi-lane batched engine: N independent runs in lockstep.

PR 1's parallel engine fans (policy × trace × config × seed) cells
across *processes*; inside a process each cell still replayed its trace
strictly one request at a time, so the tiny per-request network forward
dominated the Sibyl loop.  This module removes that ceiling **within**
a process: a *lane* is one resumable :class:`~repro.sim.runner.PolicyRun`,
and :func:`run_lanes` advances all lanes in lockstep — each tick it

1. runs every RL lane's pre-inference half
   (:meth:`~repro.core.agent.SibylAgent.place_begin`: feature
   extraction, replay insertion, per-lane ε-greedy draw, action-memo
   lookup),
2. gathers the observations of the lanes that actually need inference
   into one batch and runs **one fused forward** through the stacked
   per-lane weights (:class:`~repro.rl.c51.C51LaneStack` /
   :class:`~repro.rl.dqn.DQNLaneStack`),
3. scatters the greedy actions back
   (:meth:`~repro.core.agent.SibylAgent.place_commit`) and completes
   each lane's serve + feedback, while heuristic-policy lanes step
   without any inference cost.

**Training is fused the same way.**  A Sibyl lane's periodic training
event (8 batches of 128 through its training network, then a weight
copy) is split by the ``train_begin`` / ``train_commit`` hook pair
mirroring ``place_begin`` / ``place_commit``: at the event, the lane
only draws its own batch samples (``train_begin``); the engine then
batches the heavy half — per-lane Bellman targets plus eight stacked
forward/backward/optimizer steps through per-lane training weights
(:meth:`~repro.rl.c51.C51LaneStack.train_batch`,
:class:`~repro.rl.optim.StackedAdam`) — across every lane whose event
fell on the same tick, and ``train_commit`` finishes each lane (weight
copy, action-memo refresh).  Lanes whose events fall on *nearby* ticks
can be batched too: a lane with a pending event is simply **held** (not
stepped) for up to ``align_window`` ticks while co-trainers arrive —
pure scheduling, since lanes share no state; each lane's batches, RNG
draws, Bellman targets, and losses stay exactly its own.  The window
defaults to 0 (fuse same-tick events only) and is settable per call or
via the ``SIBYL_TRAIN_ALIGN`` environment variable.

Every lane keeps its own replay buffer, network weights, optimizer
state, and seeded RNG.  The hard guarantee (asserted by
``tests/sim/test_lanes.py``): every lane's trajectory, losses, and
final weights are **bit-identical** to a serial ``run_policy`` of the
same (policy, trace, config, seed).  The fused forward/backward
computes, per lane, exactly the floating-point operations the serial
path computes.

Composition with PR 1: ``run_many`` distributes cells across processes
(``SIBYL_PARALLEL``), and each worker packs ``SIBYL_LANES`` cells per
task; within a cell every policy of a ``run_normalized`` lineup rides
its own lane.  Throughput multiplies: cores × lanes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

import numpy as np

if TYPE_CHECKING:  # guarded: repro.obs resolves its knobs via this module
    from ..obs.sink import ObservationSink

from ..baselines.base import PlacementPolicy
from ..hss.request import Request
from ..hss.system import HybridStorageSystem
from ..rl.c51 import C51LaneStack, C51Network
from ..rl.dqn import DQNLaneStack, DQNNetwork
from ..rl.network import NetworkLaneStack
from ..rl.optim import fusion_signature, stack_optimizers
from .runner import LANE_DONE, PolicyRun, RunResult

__all__ = [
    "LaneSpec",
    "run_lanes",
    "fused_train_event",
    "group_signature",
    "resolve_lanes",
    "resolve_train_align",
    "resolve_count_env",
    "resolve_choice_env",
    "LANES_ENV",
    "TRAIN_ALIGN_ENV",
]

#: Environment knob: how many sweep cells each parallel worker packs
#: into one task (see :func:`repro.sim.parallel.run_many`), and the
#: default lane count of the hot-path benchmark's multi-lane section.
LANES_ENV = "SIBYL_LANES"

#: Environment knob: how many ticks a lane with a pending training
#: event may be held waiting for other lanes' events to align (0 =
#: fuse same-tick events only).
TRAIN_ALIGN_ENV = "SIBYL_TRAIN_ALIGN"

#: Most-recently-used fused-training stacks kept per lane group (each
#: caches stacked weight/optimizer buffers for one lane subset).
_TRAIN_STACK_CACHE_LIMIT = 8


def resolve_count_env(
    env: str, default: int, aliases: Optional[Dict[str, int]] = None
) -> int:
    """Shared contract for the engine's count-valued environment knobs.

    ``""``/``"auto"`` → ``default``; an ``aliases`` token maps to its
    value; anything else must be a **non-negative integer** — garbage
    and negative values raise ``ValueError`` (a misconfiguration must
    never silently disable packing or parallelism).
    """
    raw = os.environ.get(env, "").strip().lower()
    if raw in ("", "auto"):
        return default
    if aliases and raw in aliases:
        return aliases[raw]
    try:
        value = int(raw)
    except ValueError:
        tokens = "'auto'" + "".join(f", {t!r}" for t in sorted(aliases or ()))
        raise ValueError(
            f"{env} must be {tokens} or a non-negative integer, got {raw!r}"
        ) from None
    if value < 0:
        raise ValueError(f"{env} must be >= 0, got {value}")
    return value


def resolve_choice_env(
    env: str, default: str, choices: Sequence[str]
) -> str:
    """Shared contract for the engine's choice-valued environment knobs.

    The string sibling of :func:`resolve_count_env`: ``""`` (unset or
    blank) → ``default``; otherwise the lowered token must be one of
    ``choices`` — garbage raises ``ValueError``, because a typo in e.g.
    ``SIBYL_BACKEND`` must never silently select a different engine.
    """
    raw = os.environ.get(env, "").strip().lower()
    if raw == "":
        return default
    if raw in choices:
        return raw
    tokens = ", ".join(repr(c) for c in choices)
    raise ValueError(f"{env} must be one of {tokens}, got {raw!r}")


def resolve_lanes(default: int = 1) -> int:
    """Lane/pack count from the ``SIBYL_LANES`` environment variable.

    ``auto``/unset → ``default``; ``0`` and ``1`` both mean "no
    packing"; anything else must be a non-negative integer (garbage or
    a negative value is a misconfiguration and raises rather than
    silently disabling packing).
    """
    return max(1, resolve_count_env(LANES_ENV, default))


def resolve_train_align(default: int = 0) -> int:
    """Event-alignment window (ticks) from ``SIBYL_TRAIN_ALIGN``."""
    return resolve_count_env(TRAIN_ALIGN_ENV, default)


@dataclass
class LaneSpec:
    """One lane: the arguments of a serial ``run_policy`` call."""

    policy: PlacementPolicy
    trace: Union[Sequence[Request], Iterable[Request]]
    config: str = "H&M"
    capacity_fractions: Optional[Sequence[float]] = None
    hss: Optional[HybridStorageSystem] = None
    max_requests: Optional[int] = None
    warmup_fraction: float = 0.0

    def make_run(self) -> PolicyRun:
        return PolicyRun(
            self.policy,
            self.trace,
            config=self.config,
            capacity_fractions=self.capacity_fractions,
            hss=self.hss,
            max_requests=self.max_requests,
            warmup_fraction=self.warmup_fraction,
        )


def fused_train_event(agents: Sequence, stack_cache: Optional[dict] = None,
                      cache_key=None) -> np.ndarray:
    """Run one fused training event for agents with pending jobs.

    Every agent must have called ``train_begin`` (its own RNG draws
    already made); this executes the heavy half of all their events at
    once and commits each: per-lane Bellman targets (exactly the serial
    pass), then ``batches_per_training`` stacked forward/backward steps
    through per-lane training weights with one fused optimizer update
    each, scattering weights and optimizer state back so every lane
    ends bit-identical to having trained serially.  Agents must share
    one fusable (architecture, batch shape, optimizer) signature — the
    engine groups them; callers going through :func:`run_lanes` never
    call this directly.  Returns the ``(batches, lanes)`` loss matrix.

    ``stack_cache``/``cache_key`` memoise the stacked weight buffers
    and optimizer across recurring events of the same lane subset.
    """
    agents = list(agents)
    entry = stack_cache.get(cache_key) if stack_cache is not None else None
    if entry is None:
        nets = [agent.training_net for agent in agents]
        if isinstance(nets[0], C51Network):
            head = C51LaneStack(nets)
        else:
            head = DQNLaneStack(nets)
        entry = (head, stack_optimizers([net.optimizer for net in nets]))
        if stack_cache is not None:
            stack_cache[cache_key] = entry
            # Bound the memo: with an alignment window the lane subsets
            # flushed together can churn, and each subset's stacked
            # buffers are worth megabytes — keep the recent few, LRU.
            while len(stack_cache) > _TRAIN_STACK_CACHE_LIMIT:
                stack_cache.pop(next(iter(stack_cache)))
    elif stack_cache is not None:
        stack_cache[cache_key] = stack_cache.pop(cache_key)  # LRU refresh
    head, optimizer = entry

    head.begin_training_event()
    optimizer.gather(head.stack.flat_parameters.shape[1])

    jobs = [agent.train_job for agent in agents]
    rewards, next_obs = [], []
    for agent, (_, unique_slots, _) in zip(agents, jobs):
        r, n = agent.buffer.gather_targets(unique_slots)
        rewards.append(r)
        next_obs.append(n)
    unique_targets = head.precompute_targets(
        rewards, next_obs, [agent.inference_net for agent in agents]
    )
    targets = [t[job[2]] for t, job in zip(unique_targets, jobs)]

    hp = agents[0].hyperparams
    n, n_batches, k = hp.batch_size, hp.batches_per_training, len(agents)
    obs = np.empty((k, n, head.in_features))
    actions = np.empty((k, n), dtype=np.int64)
    batch_targets = np.empty((k, n) + targets[0].shape[1:])
    losses = np.empty((n_batches, k))
    for i in range(n_batches):
        for lane, (agent, job) in enumerate(zip(agents, jobs)):
            agent.buffer.gather_into(job[0][i], obs[lane], actions[lane])
            batch_targets[lane] = targets[lane][i * n:(i + 1) * n]
        losses[i] = head.train_batch(obs, actions, batch_targets, optimizer)

    head.end_training_event()
    optimizer.scatter()
    for lane, agent in enumerate(agents):
        agent.train_commit(losses[:, lane])
    return losses


class _LaneGroup:
    """RL lanes sharing one network architecture → one fused stack."""

    def __init__(self, runs: List[PolicyRun]) -> None:
        self.runs = runs
        nets = [run.policy.inference_net for run in runs]
        if isinstance(nets[0], C51Network):
            self.stack = C51LaneStack(nets)
        else:
            self.stack = DQNLaneStack(nets)
        # Zeros, not empty: rows of finished/exploring lanes are fed
        # through the fused forward and discarded; stale-but-finite
        # values keep the maths warning-free.
        self.obs = np.zeros((len(runs), self.stack.in_features))
        # Per-lane weight-version counters: a change means the lane
        # rewrote its inference weights (periodic training copy or a
        # checkpoint restore) and its stack slice must be re-synced
        # before the next fused forward.
        self.weights_seen = [self._version(run.policy) for run in runs]
        self.pending: List[Tuple[PolicyRun, int]] = []
        # Training fusion: lanes exposing the train_begin/train_commit
        # hook pair hand their training events to the engine.  Lanes
        # fuse when their batch shapes and optimizer constants match
        # (learning rates may differ — they stack as a column).
        self.fuse_keys: Dict[int, tuple] = {}
        for row, run in enumerate(runs):
            policy = run.policy
            if not (
                callable(getattr(policy, "train_begin", None))
                and callable(getattr(policy, "train_commit", None))
                and hasattr(policy, "external_training")
            ):
                continue
            policy.external_training = True
            signature = fusion_signature(policy.training_net.optimizer)
            hp = policy.hyperparams
            if signature is None:
                self.fuse_keys[row] = ("solo", row)
            else:
                self.fuse_keys[row] = (
                    hp.batch_size, hp.batches_per_training, signature
                )
        self.train_queue: Dict[int, int] = {}  # row -> ticks waited
        self._train_stacks: Dict[tuple, tuple] = {}

    @staticmethod
    def _version(policy) -> int:
        version = getattr(policy, "weights_version", None)
        if version is None:  # foreign RL policy without the counter
            version = getattr(policy, "train_events", 0)
        return version

    def resync(self) -> None:
        for row, run in enumerate(self.runs):
            version = self._version(run.policy)
            if version != self.weights_seen[row]:
                self.weights_seen[row] = version
                self.stack.refresh(row)

    # --------------------------------------------------------- training
    def collect_pending(self, held: Set[int]) -> None:
        """Queue lanes whose training event fell due this tick."""
        for row in self.fuse_keys:
            if row in self.train_queue:
                continue
            run = self.runs[row]
            if run.policy.train_pending:
                self.train_queue[row] = 0
                held.add(id(run))

    def flush_due(
        self,
        held: Set[int],
        window: int,
        sink: Optional["ObservationSink"] = None,
    ) -> None:
        """Flush aligned event buckets; age the ones still waiting."""
        if not self.train_queue:
            return
        buckets: Dict[tuple, List[int]] = {}
        for row in self.train_queue:
            buckets.setdefault(self.fuse_keys[row], []).append(row)
        for key, rows in buckets.items():
            due = any(self.train_queue[row] >= window for row in rows)
            if not due:
                # No co-trainer can still arrive: every unfinished lane
                # of this fusion class is already waiting.
                due = all(
                    self.runs[row].finished or row in self.train_queue
                    for row, row_key in self.fuse_keys.items()
                    if row_key == key
                )
            if due:
                self._flush(sorted(rows), held, sink)
            else:
                for row in rows:
                    self.train_queue[row] += 1

    def _flush(
        self,
        rows: List[int],
        held: Set[int],
        sink: Optional["ObservationSink"] = None,
    ) -> None:
        for row in rows:
            del self.train_queue[row]
            held.discard(id(self.runs[row]))
        if sink is not None:
            sink.count("train_events", len(rows))
            if len(rows) > 1:
                sink.count("fused_train_events")
        agents = [self.runs[row].policy for row in rows]
        if len(agents) == 1:
            # A lone event gains nothing from stacking; the serial
            # commit is the identical computation without the gather.
            agents[0].train_commit()
            return
        fused_train_event(agents, self._train_stacks, tuple(rows))


def group_signature(policy) -> tuple:
    """Fusion-compatibility key of an RL policy's inference network.

    Policies with equal signatures can share one stacked fused forward
    (:class:`~repro.rl.c51.C51LaneStack` / ``DQNLaneStack``).  Shared by
    the lane engine's architecture grouping and the placement daemon's
    tenant grouping (:mod:`repro.serve.engine`).
    """
    net = policy.inference_net
    arch = NetworkLaneStack.signature(net.network)
    if isinstance(net, C51Network):
        return ("c51", arch, net.config.n_actions, net.config.n_atoms)
    return ("dqn", arch)


def run_lanes(
    specs: Sequence[LaneSpec],
    align_window: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
    backend: Optional[str] = None,
    sink: Optional["ObservationSink"] = None,
) -> List[RunResult]:
    """Advance all lanes in lockstep; results in spec order.

    Each lane is bit-identical to ``run_policy`` with the same spec —
    the engine only changes *when* each lane's work happens (interleaved
    per tick, with lanes briefly held while training events align) and
    *how* RL inference and training are computed (fused across lanes
    instead of per lane).  ``align_window`` is the maximum number of
    ticks a lane with a pending training event waits for co-trainers
    (default: the ``SIBYL_TRAIN_ALIGN`` environment variable, else 0 =
    fuse same-tick events only).

    ``stats``, when given, is filled with engine counters; ``sink``
    accepts any :class:`repro.obs.sink.ObservationSink` for the same
    stream, and when ``SIBYL_OBS=on`` the counts also feed the
    process-wide metrics registry.  All three are pure observation,
    never behaviour: ``ticks`` (lockstep rounds that advanced at least
    one RL lane; per-lane request count on the SoA engines),
    ``fused_forwards`` (stacked inference calls; at most one per
    architecture group per tick), ``fused_rows`` (total
    lane-observations those forwards carried), ``max_fused_rows``
    (widest single forward), ``train_events`` /
    ``fused_train_events`` (training commits, and how many flushes
    stacked more than one lane), and ``kernel_barriers``
    (Python-boundary crossings of the SoA engines; 0 on the lockstep
    path).  ``fused_rows > fused_forwards`` is the smoking gun that
    independent lanes — e.g. the seed replicas of a multi-seed
    campaign — actually shared batched inference instead of each
    paying its own forward.

    Observation never forces an engine: eligible Sibyl lanes divert to
    the SoA kernels (bit-identical by contract) whether or not counters
    are requested, and the kernels feed the same sink.  A kernel-run
    lane reports its own per-request ticks and one-row forwards, so
    multi-lane totals differ from the shared lockstep rounds — pin
    ``backend="off"`` to observe lockstep fusion itself.
    """
    from ..obs import engine_sink
    from ..obs.sink import ENGINE_COUNTERS, ENGINE_MAXIMA, DictSink, combine_sinks

    if align_window is None:
        align_window = resolve_train_align()
    sink = combine_sinks(
        DictSink(stats) if stats is not None else None, sink, engine_sink()
    )
    if sink is not None:
        for name in ENGINE_COUNTERS:
            sink.count(name, 0)
        for name in ENGINE_MAXIMA:
            sink.record_max(name, 0)
    runs = [spec.make_run() for spec in specs]

    # SoA tick-engine diversion: eligible Sibyl lanes run to completion
    # through repro.sim.kernels (bit-identical by contract) and drop out
    # of the lockstep loop below; everything else stays.  ``backend``
    # overrides the ``SIBYL_BACKEND`` environment knob.
    from . import kernels

    remaining = kernels.run_kernel_lanes(runs, backend=backend, sink=sink)

    # Partition: lanes whose policy exposes the externally-driven
    # inference hook (SibylAgent) *and* a head the stacks know how to
    # fuse ride the batched path; everything else — heuristics, oracle,
    # extremes, or a future head type with its own decision rule — steps
    # through the plain per-lane path, which is correct for any policy.
    rl_runs: List[PolicyRun] = []
    plain_runs: List[PolicyRun] = []
    for run in remaining:
        policy = run.policy
        if callable(getattr(policy, "place_begin", None)) and isinstance(
            getattr(policy, "inference_net", None), (C51Network, DQNNetwork)
        ):
            rl_runs.append(run)
        else:
            plain_runs.append(run)

    by_signature: Dict[tuple, List[PolicyRun]] = {}
    for run in rl_runs:
        by_signature.setdefault(group_signature(run.policy), []).append(run)
    groups = [_LaneGroup(members) for members in by_signature.values()]
    group_row: Dict[int, Tuple[_LaneGroup, int]] = {}
    for group in groups:
        for row, run in enumerate(group.runs):
            group_row[id(run)] = (group, row)

    held: Set[int] = set()  # ids of lanes waiting in a training queue
    active_plain = list(plain_runs)
    active_rl = list(rl_runs)
    try:
        while active_plain or active_rl:
            if active_plain:
                active_plain = [run for run in active_plain if run.step()]
            if active_rl:
                advanced = False
                next_rl: List[PolicyRun] = []
                for run in active_rl:
                    if id(run) in held:
                        next_rl.append(run)
                        continue
                    obs = run.step_begin()
                    if obs is LANE_DONE:
                        continue
                    advanced = True
                    next_rl.append(run)
                    # obs None: exploration draw or action-memo hit —
                    # the step already completed inline in step_begin.
                    if obs is not None:
                        group, row = group_row[id(run)]
                        group.obs[row] = obs
                        group.pending.append((run, row))
                if advanced and sink is not None:
                    sink.count("ticks")
                for group in groups:
                    if group.pending:
                        if sink is not None:
                            rows = len(group.pending)
                            sink.count("fused_forwards")
                            sink.count("fused_rows", rows)
                            sink.record_max("max_fused_rows", rows)
                        actions = group.stack.best_actions(group.obs)
                        for run, row in group.pending:
                            run.step_finish(int(actions[row]))
                        group.pending.clear()
                # Fused training: queue lanes whose event fell due this
                # tick (their feedback only ran train_begin), flush the
                # aligned buckets, then re-sync the stack slices of
                # lanes whose inference weights changed.
                for group in groups:
                    group.collect_pending(held)
                    group.flush_due(held, align_window, sink)
                for group in groups:
                    group.resync()
                active_rl = next_rl
    finally:
        # Hand the policies back in their standalone (inline-training)
        # mode: a lane agent reused outside the engine must not leave
        # training events pending for a driver that no longer exists.
        # On a clean exit the loop has drained every queue; if an
        # exception unwound mid-run, a held lane may still owe a
        # commit — abort it so the agent stays usable.
        for group in groups:
            for row in group.fuse_keys:
                policy = group.runs[row].policy
                policy.external_training = False
                if getattr(policy, "train_pending", False):
                    policy.train_abort()

    return [run.result() for run in runs]
