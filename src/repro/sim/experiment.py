"""Experiment definitions: the sweeps behind each paper figure.

Each function corresponds to one evaluation axis and returns plain
dicts ready for :mod:`repro.sim.report`.  Benchmarks call these with
reduced trace lengths; examples and users can scale ``n_requests`` up.

All experiments measure the steady-state window (default: requests
after a 30% warmup) — the short-trace equivalent of the paper's
multi-hour runs, applied identically to every policy (see
``run_policy``'s docstring).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from ..baselines import (
    ArchivistPolicy,
    CDEPolicy,
    HPSPolicy,
    OraclePolicy,
    RNNHSSPolicy,
    SlowOnlyPolicy,
    TriHeuristicPolicy,
)
from ..baselines.base import PlacementPolicy
from ..core.agent import SibylAgent
from ..core.hyperparams import SIBYL_DEFAULT, SIBYL_OPT, SibylHyperParams
from ..hss.request import Request
from ..traces.mixer import make_mixed_trace
from ..traces.workloads import make_trace
from .runner import run_normalized, run_policy

__all__ = [
    "DEFAULT_WARMUP",
    "ORACLE_HORIZONS",
    "standard_policies",
    "run_oracle_best",
    "compare_policies",
    "capacity_sweep",
    "hyperparameter_sweep",
    "feature_ablation",
    "buffer_size_sweep",
    "tri_hybrid_comparison",
    "mixed_workload_comparison",
    "unseen_workload_comparison",
]

#: Steady-state measurement window start (fraction of the trace).
DEFAULT_WARMUP = 0.3

#: Reuse-horizon scales searched by the Oracle ("complete knowledge of
#: future access patterns" includes knowing the best admission horizon).
ORACLE_HORIZONS = (2.0, 8.0, 64.0, 1e9)


def standard_policies(
    include_sibyl: bool = True,
    seed: int = 0,
    hyperparams: SibylHyperParams = SIBYL_DEFAULT,
) -> List[PlacementPolicy]:
    """The paper's Fig. 9 lineup minus Fast-Only (reference) and Oracle
    (handled by :func:`run_oracle_best`)."""
    policies: List[PlacementPolicy] = [
        SlowOnlyPolicy(),
        CDEPolicy(),
        HPSPolicy(),
        ArchivistPolicy(seed=seed),
        RNNHSSPolicy(seed=seed),
    ]
    if include_sibyl:
        policies.append(SibylAgent(hyperparams=hyperparams, seed=seed))
    return policies


def run_oracle_best(
    trace: Sequence[Request],
    config: str,
    capacity_fractions: Optional[Sequence[float]] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
):
    """Best Oracle run across admission horizons (lowest avg latency).

    The Oracle has complete future knowledge, which includes choosing
    how aggressively to admit into fast storage; searching a small
    horizon grid realises that.
    """
    best = None
    for horizon in ORACLE_HORIZONS:
        result = run_policy(
            OraclePolicy(horizon_scale=horizon),
            trace,
            config=config,
            capacity_fractions=capacity_fractions,
            warmup_fraction=warmup_fraction,
        )
        if best is None or result.avg_latency_s < best.avg_latency_s:
            best = result
    return best


def _with_oracle(
    lineup: Sequence[PlacementPolicy],
    trace: Sequence[Request],
    config: str,
    capacity_fractions: Optional[Sequence[float]] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, float]]:
    """run_normalized + a best-of-horizons Oracle entry."""
    out = run_normalized(
        lineup,
        trace,
        config=config,
        capacity_fractions=capacity_fractions,
        warmup_fraction=warmup_fraction,
    )
    oracle = run_oracle_best(
        trace, config, capacity_fractions, warmup_fraction
    )
    reference_latency = out["Fast-Only"]["avg_latency_s"]
    reference_iops = out["Fast-Only"]["raw_iops"]
    out["Oracle"] = {
        "latency": oracle.avg_latency_s / reference_latency,
        "iops": oracle.iops / reference_iops if reference_iops else 0.0,
        "eviction_fraction": oracle.eviction_fraction,
        "fast_preference": oracle.profile.fast_preference,
        "avg_latency_s": oracle.avg_latency_s,
    }
    return out


def compare_policies(
    workloads: Sequence[str],
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    policies: Optional[Callable[[], List[PlacementPolicy]]] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 2/9/10/18-style comparison: {workload: {policy: metrics}}."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        trace = make_trace(name, n_requests=n_requests, seed=seed)
        lineup = policies() if policies else standard_policies(seed=seed)
        out[name] = _with_oracle(
            lineup, trace, config, warmup_fraction=warmup_fraction
        )
    return out


def capacity_sweep(
    workload: str,
    fractions: Sequence[float],
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[float, Dict[str, Dict[str, float]]]:
    """Fig. 15: normalised latency vs available fast-storage capacity."""
    trace = make_trace(workload, n_requests=n_requests, seed=seed)
    out: Dict[float, Dict[str, Dict[str, float]]] = {}
    for frac in fractions:
        if frac <= 0:
            raise ValueError("capacity fractions must be positive")
        lineup: List[PlacementPolicy] = [
            CDEPolicy(),
            HPSPolicy(),
            ArchivistPolicy(seed=seed),
            RNNHSSPolicy(seed=seed),
            SibylAgent(seed=seed),
        ]
        out[frac] = _with_oracle(
            lineup,
            trace,
            config,
            capacity_fractions=(frac,),
            warmup_fraction=warmup_fraction,
        )
    return out


def hyperparameter_sweep(
    parameter: str,
    values: Sequence,
    workload: str = "rsrch_0",
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[object, Dict[str, float]]:
    """Fig. 14: Sibyl's normalised metrics as one hyper-parameter varies."""
    trace = make_trace(workload, n_requests=n_requests, seed=seed)
    out: Dict[object, Dict[str, float]] = {}
    for value in values:
        hp = SIBYL_DEFAULT.replace(**{parameter: value})
        agent = SibylAgent(hyperparams=hp, seed=seed)
        out[value] = run_normalized(
            [agent], trace, config=config, warmup_fraction=warmup_fraction
        )["Sibyl"]
    return out


def feature_ablation(
    workloads: Sequence[str],
    feature_sets: Sequence[str],
    config: str = "H&L",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, float]]:
    """Fig. 13: {workload: {feature_set: normalised latency}} on H&L."""
    out: Dict[str, Dict[str, float]] = {}
    for name in workloads:
        trace = make_trace(name, n_requests=n_requests, seed=seed)
        row: Dict[str, float] = {}
        for fs in feature_sets:
            agent = SibylAgent(feature_set=fs, seed=seed)
            agent.name = f"Sibyl[{fs}]"
            row[fs] = run_normalized(
                [agent], trace, config=config, warmup_fraction=warmup_fraction
            )[agent.name]["latency"]
        out[name] = row
    return out


def buffer_size_sweep(
    sizes: Sequence[int],
    workload: str = "rsrch_0",
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[int, float]:
    """Fig. 8: normalised latency vs experience-buffer capacity."""
    trace = make_trace(workload, n_requests=n_requests, seed=seed)
    out: Dict[int, float] = {}
    for size in sizes:
        hp = SIBYL_DEFAULT.replace(
            buffer_capacity=size,
            batch_size=min(SIBYL_DEFAULT.batch_size, max(1, size)),
        )
        agent = SibylAgent(hyperparams=hp, seed=seed)
        out[size] = run_normalized(
            [agent], trace, config=config, warmup_fraction=warmup_fraction
        )["Sibyl"]["latency"]
    return out


def tri_hybrid_comparison(
    workloads: Sequence[str],
    config: str = "H&M&L",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 16: heuristic tri-hybrid vs 3-action Sibyl."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        trace = make_trace(name, n_requests=n_requests, seed=seed)
        lineup: List[PlacementPolicy] = [
            TriHeuristicPolicy(),
            SibylAgent(seed=seed),
        ]
        out[name] = run_normalized(
            lineup, trace, config=config, warmup_fraction=warmup_fraction
        )
    return out


def mixed_workload_comparison(
    mixes: Sequence[str],
    config: str = "H&M",
    n_requests_per_component: int = 8_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 12: Sibyl_Def vs Sibyl_Opt vs baselines on Table 5 mixes."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for mix in mixes:
        trace = make_mixed_trace(
            mix, n_requests_per_component=n_requests_per_component, seed=seed
        )
        sibyl_def = SibylAgent(seed=seed)
        sibyl_def.name = "Sibyl_Def"
        sibyl_opt = SibylAgent(hyperparams=SIBYL_OPT, seed=seed)
        sibyl_opt.name = "Sibyl_Opt"
        lineup: List[PlacementPolicy] = [
            SlowOnlyPolicy(),
            CDEPolicy(),
            HPSPolicy(),
            ArchivistPolicy(seed=seed),
            RNNHSSPolicy(seed=seed),
            sibyl_def,
            sibyl_opt,
        ]
        out[mix] = _with_oracle(
            lineup, trace, config, warmup_fraction=warmup_fraction
        )
    return out


def unseen_workload_comparison(
    workloads: Sequence[str],
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Fig. 11: generalisation to FileBench workloads never tuned on."""
    out: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name in workloads:
        trace = make_trace(name, n_requests=n_requests, seed=seed)
        lineup: List[PlacementPolicy] = [
            SlowOnlyPolicy(),
            ArchivistPolicy(seed=seed),
            RNNHSSPolicy(seed=seed),
            SibylAgent(seed=seed),
        ]
        out[name] = _with_oracle(
            lineup, trace, config, warmup_fraction=warmup_fraction
        )
    return out
