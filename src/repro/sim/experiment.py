"""Experiment definitions: the sweeps behind each paper figure.

Each function corresponds to one evaluation axis and returns plain
dicts ready for :mod:`repro.sim.report`.  Benchmarks call these with
reduced trace lengths; examples and users can scale ``n_requests`` up.

All experiments measure the steady-state window (default: requests
after a 30% warmup) — the short-trace equivalent of the paper's
multi-hour runs, applied identically to every policy (see
``run_policy``'s docstring).

Every sweep fans its grid out through :func:`repro.sim.parallel.run_many`:
each grid point is a self-contained, deterministically seeded cell (the
cell function rebuilds its trace and policies from primitive parameters
inside the worker), so parallel execution is bit-identical to the
serial path and only wall-clock time changes.  Pass ``max_workers`` to
pin the fan-out, or set ``SIBYL_PARALLEL=serial`` to force the serial
path globally.  Within a cell, the policy lineup advances through the
multi-lane engine (:mod:`repro.sim.lanes`): every policy steps its own
lane in lockstep over the trace, with one fused network forward per
tick across the RL lanes — again bit-identical, again wall-clock only.

Workload names are usually catalog entries (``"rsrch_0"``); the form
``"msrc:<path.csv>"`` instead streams a real MSRC trace from disk
chunk-by-chunk (:class:`repro.traces.msrc.StreamingMSRCTrace`), so
full-length captures feed the lanes without materialising the request
list.  ``n_requests`` then caps the streamed prefix and ``seed`` only
seeds the policies.

Every sweep also takes a **seed axis**: pass ``seeds=[...]`` (explicit
seed list) or ``n_seeds=N`` (seeds ``seed .. seed+N-1``) and the sweep
runs every cell once per seed — the seed replicas ride the multi-lane
engine together (one fused forward per tick across seeds; see
:mod:`repro.sim.campaign`) — and returns the same result structure
with every numeric leaf replaced by a
:class:`~repro.sim.campaign.SeededResult` carrying mean, std, min/max,
and a bootstrap 95% confidence interval.  Without a seed axis the
output is bit-identical to what it always was.  ``on_cell(key,
result)``, when given, fires as each grid cell completes (completion
order), so long campaigns can stream rows into a report instead of
materialising the full grid first.

Finally, every sweep can be made **durable**: pass ``store=`` (a
:class:`repro.store.CampaignStore` or a path) and each finished cell
persists on disk keyed by its content fingerprint, so re-running the
sweep recomputes nothing that already ran — and a sweep killed
mid-grid resumes from its journal, dispatching only the missing cells.
``resume=True`` with no explicit store opens the default
``.sibyl-store/`` directory.  Stored cells round-trip losslessly
(``docs/store.md``), so a warm or resumed sweep's tables and JSON
exports are byte-identical to a cold run's.  The one exception is the
``policies=`` factory path of :func:`compare_policies`: a closure-built
lineup has no content identity, so that path always recomputes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..baselines import (
    ArchivistPolicy,
    CDEPolicy,
    HPSPolicy,
    OraclePolicy,
    RNNHSSPolicy,
    SlowOnlyPolicy,
    TriHeuristicPolicy,
)
from ..baselines.base import PlacementPolicy
from ..core.agent import SibylAgent
from ..core.hyperparams import SIBYL_DEFAULT, SIBYL_OPT, SibylHyperParams
from ..hss.request import Request
from ..traces.mixer import make_mixed_trace
from ..traces.workloads import make_trace
from .parallel import Cell, iter_many, run_grid
from .runner import run_normalized, run_policy

__all__ = [
    "DEFAULT_WARMUP",
    "ORACLE_HORIZONS",
    "standard_policies",
    "run_oracle_best",
    "compare_policies",
    "capacity_sweep",
    "hyperparameter_sweep",
    "feature_ablation",
    "buffer_size_sweep",
    "tri_hybrid_comparison",
    "mixed_workload_comparison",
    "unseen_workload_comparison",
]

#: Steady-state measurement window start (fraction of the trace).
DEFAULT_WARMUP = 0.3

#: Reuse-horizon scales searched by the Oracle ("complete knowledge of
#: future access patterns" includes knowing the best admission horizon).
ORACLE_HORIZONS = (2.0, 8.0, 64.0, 1e9)


def standard_policies(
    include_sibyl: bool = True,
    seed: int = 0,
    hyperparams: SibylHyperParams = SIBYL_DEFAULT,
) -> List[PlacementPolicy]:
    """The paper's Fig. 9 lineup minus Fast-Only (reference) and Oracle
    (handled by :func:`run_oracle_best`)."""
    policies: List[PlacementPolicy] = [
        SlowOnlyPolicy(),
        CDEPolicy(),
        HPSPolicy(),
        ArchivistPolicy(seed=seed),
        RNNHSSPolicy(seed=seed),
    ]
    if include_sibyl:
        policies.append(SibylAgent(hyperparams=hyperparams, seed=seed))
    return policies


def run_oracle_best(
    trace: Sequence[Request],
    config: str,
    capacity_fractions: Optional[Sequence[float]] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
):
    """Best Oracle run across admission horizons (lowest avg latency).

    The Oracle has complete future knowledge, which includes choosing
    how aggressively to admit into fast storage; searching a small
    horizon grid realises that.
    """
    best = None
    for horizon in ORACLE_HORIZONS:
        result = run_policy(
            OraclePolicy(horizon_scale=horizon),
            trace,
            config=config,
            capacity_fractions=capacity_fractions,
            warmup_fraction=warmup_fraction,
        )
        if best is None or result.avg_latency_s < best.avg_latency_s:
            best = result
    return best


def oracle_row(oracle, reference_row: Dict[str, float]) -> Dict[str, float]:
    """The Oracle's metrics dict, normalised against a Fast-Only row.

    Shared by the single-seed cells here and the multi-seed campaign
    layer (:mod:`repro.sim.campaign`), so both compute the Oracle entry
    from identical expressions.
    """
    reference_latency = reference_row["avg_latency_s"]
    reference_iops = reference_row["raw_iops"]
    return {
        "latency": oracle.avg_latency_s / reference_latency,
        "iops": oracle.iops / reference_iops if reference_iops else 0.0,
        "eviction_fraction": oracle.eviction_fraction,
        "fast_preference": oracle.profile.fast_preference,
        "avg_latency_s": oracle.avg_latency_s,
    }


def _with_oracle(
    lineup: Sequence[PlacementPolicy],
    trace: Sequence[Request],
    config: str,
    capacity_fractions: Optional[Sequence[float]] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, float]]:
    """run_normalized + a best-of-horizons Oracle entry."""
    out = run_normalized(
        lineup,
        trace,
        config=config,
        capacity_fractions=capacity_fractions,
        warmup_fraction=warmup_fraction,
    )
    oracle = run_oracle_best(
        trace, config, capacity_fractions, warmup_fraction
    )
    out["Oracle"] = oracle_row(oracle, out["Fast-Only"])
    return out


# --------------------------------------------------------------------------
# Grid-cell functions.  Each is module-level (picklable) and rebuilds its
# trace + policy lineup from primitive parameters, so a cell computes the
# same result whether it runs inline or in a worker process.
# --------------------------------------------------------------------------

def _resolve_trace(workload: str, n_requests: int, seed: int):
    """A cell's trace source: synthetic catalog entry or streamed MSRC.

    ``"msrc:<path>"`` returns a re-iterable streaming view of the CSV at
    ``<path>`` (capped at ``n_requests``), so even full-length captures
    feed the simulation lanes chunk-by-chunk; anything else is generated
    by the synthetic workload catalog.
    """
    if workload.startswith("msrc:"):
        from ..traces.msrc import StreamingMSRCTrace

        return StreamingMSRCTrace(workload[5:], max_requests=n_requests)
    return make_trace(workload, n_requests=n_requests, seed=seed)


# Per-sweep policy lineups, factored out so the single-seed cells below
# and the multi-seed campaign layer (repro.sim.campaign) construct
# *identical* lineups from identical expressions — the precondition for
# a campaign's per-seed rows being bit-identical to single-seed cells.

def _compare_lineup(seed: int) -> List[PlacementPolicy]:
    return standard_policies(seed=seed)


def _capacity_lineup(seed: int) -> List[PlacementPolicy]:
    return [
        CDEPolicy(),
        HPSPolicy(),
        ArchivistPolicy(seed=seed),
        RNNHSSPolicy(seed=seed),
        SibylAgent(seed=seed),
    ]


def _tri_hybrid_lineup(seed: int) -> List[PlacementPolicy]:
    return [
        TriHeuristicPolicy(),
        SibylAgent(seed=seed),
    ]


def _mixed_lineup(seed: int) -> List[PlacementPolicy]:
    sibyl_def = SibylAgent(seed=seed)
    sibyl_def.name = "Sibyl_Def"
    sibyl_opt = SibylAgent(hyperparams=SIBYL_OPT, seed=seed)
    sibyl_opt.name = "Sibyl_Opt"
    return [
        SlowOnlyPolicy(),
        CDEPolicy(),
        HPSPolicy(),
        ArchivistPolicy(seed=seed),
        RNNHSSPolicy(seed=seed),
        sibyl_def,
        sibyl_opt,
    ]


def _unseen_lineup(seed: int) -> List[PlacementPolicy]:
    return [
        SlowOnlyPolicy(),
        ArchivistPolicy(seed=seed),
        RNNHSSPolicy(seed=seed),
        SibylAgent(seed=seed),
    ]


def _compare_cell(
    workload: str,
    config: str,
    n_requests: int,
    seed: int,
    warmup_fraction: float,
) -> Dict[str, Dict[str, float]]:
    trace = _resolve_trace(workload, n_requests, seed)
    lineup = _compare_lineup(seed)
    return _with_oracle(lineup, trace, config, warmup_fraction=warmup_fraction)


def _capacity_cell(
    workload: str,
    frac: float,
    config: str,
    n_requests: int,
    seed: int,
    warmup_fraction: float,
) -> Dict[str, Dict[str, float]]:
    trace = _resolve_trace(workload, n_requests, seed)
    lineup = _capacity_lineup(seed)
    return _with_oracle(
        lineup,
        trace,
        config,
        capacity_fractions=(frac,),
        warmup_fraction=warmup_fraction,
    )


def _hyperparameter_cell(
    parameter: str,
    value,
    workload: str,
    config: str,
    n_requests: int,
    seed: int,
    warmup_fraction: float,
) -> Dict[str, float]:
    trace = _resolve_trace(workload, n_requests, seed)
    hp = SIBYL_DEFAULT.replace(**{parameter: value})
    agent = SibylAgent(hyperparams=hp, seed=seed)
    return run_normalized(
        [agent], trace, config=config, warmup_fraction=warmup_fraction
    )["Sibyl"]


def _feature_cell(
    workload: str,
    feature_set: str,
    config: str,
    n_requests: int,
    seed: int,
    warmup_fraction: float,
) -> float:
    trace = _resolve_trace(workload, n_requests, seed)
    agent = SibylAgent(feature_set=feature_set, seed=seed)
    agent.name = f"Sibyl[{feature_set}]"
    return run_normalized(
        [agent], trace, config=config, warmup_fraction=warmup_fraction
    )[agent.name]["latency"]


def _buffer_size_cell(
    size: int,
    workload: str,
    config: str,
    n_requests: int,
    seed: int,
    warmup_fraction: float,
) -> float:
    trace = _resolve_trace(workload, n_requests, seed)
    hp = SIBYL_DEFAULT.replace(
        buffer_capacity=size,
        batch_size=min(SIBYL_DEFAULT.batch_size, max(1, size)),
    )
    agent = SibylAgent(hyperparams=hp, seed=seed)
    return run_normalized(
        [agent], trace, config=config, warmup_fraction=warmup_fraction
    )["Sibyl"]["latency"]


def _tri_hybrid_cell(
    workload: str,
    config: str,
    n_requests: int,
    seed: int,
    warmup_fraction: float,
) -> Dict[str, Dict[str, float]]:
    trace = _resolve_trace(workload, n_requests, seed)
    lineup = _tri_hybrid_lineup(seed)
    return run_normalized(
        lineup, trace, config=config, warmup_fraction=warmup_fraction
    )


def _mixed_cell(
    mix: str,
    config: str,
    n_requests_per_component: int,
    seed: int,
    warmup_fraction: float,
) -> Dict[str, Dict[str, float]]:
    trace = make_mixed_trace(
        mix, n_requests_per_component=n_requests_per_component, seed=seed
    )
    lineup = _mixed_lineup(seed)
    return _with_oracle(lineup, trace, config, warmup_fraction=warmup_fraction)


def _unseen_cell(
    workload: str,
    config: str,
    n_requests: int,
    seed: int,
    warmup_fraction: float,
) -> Dict[str, Dict[str, float]]:
    trace = _resolve_trace(workload, n_requests, seed)
    lineup = _unseen_lineup(seed)
    return _with_oracle(lineup, trace, config, warmup_fraction=warmup_fraction)


# --------------------------------------------------------------------------
# Public sweeps: build the grid, fan it out, merge the results.
# --------------------------------------------------------------------------

def _seed_axis(seeds, n_seeds, base_seed) -> Optional[Tuple[int, ...]]:
    """The sweep's resolved seed axis, or None for the legacy path.

    Lazy import: :mod:`repro.sim.campaign` builds on this module, so
    the dependency must point campaign → experiment at import time.
    """
    if seeds is None and n_seeds is None:
        return None
    from .campaign import resolve_seeds

    return resolve_seeds(seeds=seeds, n_seeds=n_seeds, base_seed=base_seed)


def _campaign_store(store, resume: bool):
    """Resolve a sweep's ``store=``/``resume=`` pair into a store.

    ``store`` may be a :class:`repro.store.CampaignStore`, a path to
    one, or ``None``; ``resume=True`` without an explicit store opens
    the default store directory (``.sibyl-store/``), which is what
    "resume the campaign I just lost" should mean with no ceremony.
    Returns ``None`` when the sweep runs undurably.
    """
    from ..store import DEFAULT_STORE_DIR, resolve_store

    if store is None and resume:
        store = DEFAULT_STORE_DIR
    return resolve_store(store)


def compare_policies(
    workloads: Sequence[str],
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    policies: Optional[Callable[[], List[PlacementPolicy]]] = None,
    warmup_fraction: float = DEFAULT_WARMUP,
    max_workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    n_seeds: Optional[int] = None,
    on_cell: Optional[Callable] = None,
    store=None,
    resume: bool = False,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Fig. 2/9/10/18-style comparison: {workload: {policy: metrics}}.

    With a seed axis (``seeds=`` or ``n_seeds=``), each workload cell
    runs once per seed — the seed replicas ride the multi-lane engine
    together — and every metric leaf is a
    :class:`~repro.sim.campaign.SeededResult` confidence band.

    A custom ``policies`` factory (often a closure) cannot be shipped to
    worker processes, so that path runs serially in-process (the seed
    axis still rides lanes there; the factory is called once per seed
    and owns any policy seeding itself).
    """
    seed_axis = _seed_axis(seeds, n_seeds, seed)
    store = _campaign_store(store, resume)
    if policies is not None:
        out: Dict[str, Dict[str, Dict[str, object]]] = {}
        for name in workloads:
            if seed_axis is None:
                trace = make_trace(name, n_requests=n_requests, seed=seed)
                out[name] = _with_oracle(
                    policies(), trace, config, warmup_fraction=warmup_fraction
                )
            else:
                from .campaign import aggregate_seeds, run_seeded_normalized

                per_seed = run_seeded_normalized(
                    seed_axis,
                    [
                        make_trace(name, n_requests=n_requests, seed=s)
                        for s in seed_axis
                    ],
                    [policies() for _ in seed_axis],
                    config=config,
                    warmup_fraction=warmup_fraction,
                    with_oracle=True,
                )
                out[name] = aggregate_seeds(per_seed, seeds=seed_axis)
            if on_cell is not None:
                on_cell(name, out[name])
        return out
    if seed_axis is not None:
        from .campaign import seeded_compare_cell

        cells = [
            Cell(
                key=name,
                fn=seeded_compare_cell,
                kwargs=dict(
                    workload=name,
                    config=config,
                    n_requests=n_requests,
                    seeds=seed_axis,
                    warmup_fraction=warmup_fraction,
                ),
            )
            for name in workloads
        ]
        return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)
    cells = [
        Cell(
            key=name,
            fn=_compare_cell,
            kwargs=dict(
                workload=name,
                config=config,
                n_requests=n_requests,
                seed=seed,
                warmup_fraction=warmup_fraction,
            ),
        )
        for name in workloads
    ]
    return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)


def capacity_sweep(
    workload: str,
    fractions: Sequence[float],
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
    max_workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    n_seeds: Optional[int] = None,
    on_cell: Optional[Callable] = None,
    store=None,
    resume: bool = False,
) -> Dict[float, Dict[str, Dict[str, object]]]:
    """Fig. 15: normalised latency vs available fast-storage capacity."""
    for frac in fractions:
        if frac <= 0:
            raise ValueError("capacity fractions must be positive")
    seed_axis = _seed_axis(seeds, n_seeds, seed)
    store = _campaign_store(store, resume)
    if seed_axis is not None:
        from .campaign import seeded_capacity_cell

        cells = [
            Cell(
                key=frac,
                fn=seeded_capacity_cell,
                kwargs=dict(
                    workload=workload,
                    frac=frac,
                    config=config,
                    n_requests=n_requests,
                    seeds=seed_axis,
                    warmup_fraction=warmup_fraction,
                ),
            )
            for frac in fractions
        ]
        return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)
    cells = [
        Cell(
            key=frac,
            fn=_capacity_cell,
            kwargs=dict(
                workload=workload,
                frac=frac,
                config=config,
                n_requests=n_requests,
                seed=seed,
                warmup_fraction=warmup_fraction,
            ),
        )
        for frac in fractions
    ]
    return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)


def hyperparameter_sweep(
    parameter: str,
    values: Sequence,
    workload: str = "rsrch_0",
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
    max_workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    n_seeds: Optional[int] = None,
    on_cell: Optional[Callable] = None,
    store=None,
    resume: bool = False,
) -> Dict[object, Dict[str, object]]:
    """Fig. 14: Sibyl's normalised metrics as one hyper-parameter varies."""
    seed_axis = _seed_axis(seeds, n_seeds, seed)
    store = _campaign_store(store, resume)
    if seed_axis is not None:
        from .campaign import seeded_hyperparameter_cell

        cells = [
            Cell(
                key=value,
                fn=seeded_hyperparameter_cell,
                kwargs=dict(
                    parameter=parameter,
                    value=value,
                    workload=workload,
                    config=config,
                    n_requests=n_requests,
                    seeds=seed_axis,
                    warmup_fraction=warmup_fraction,
                ),
            )
            for value in values
        ]
        return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)
    cells = [
        Cell(
            key=value,
            fn=_hyperparameter_cell,
            kwargs=dict(
                parameter=parameter,
                value=value,
                workload=workload,
                config=config,
                n_requests=n_requests,
                seed=seed,
                warmup_fraction=warmup_fraction,
            ),
        )
        for value in values
    ]
    return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)


def feature_ablation(
    workloads: Sequence[str],
    feature_sets: Sequence[str],
    config: str = "H&L",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
    max_workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    n_seeds: Optional[int] = None,
    on_cell: Optional[Callable] = None,
    store=None,
    resume: bool = False,
) -> Dict[str, Dict[str, object]]:
    """Fig. 13: {workload: {feature_set: normalised latency}} on H&L."""
    seed_axis = _seed_axis(seeds, n_seeds, seed)
    store = _campaign_store(store, resume)
    if seed_axis is not None:
        from .campaign import seeded_feature_cell

        cells = [
            Cell(
                key=(name, fs),
                fn=seeded_feature_cell,
                kwargs=dict(
                    workload=name,
                    feature_set=fs,
                    config=config,
                    n_requests=n_requests,
                    seeds=seed_axis,
                    warmup_fraction=warmup_fraction,
                ),
            )
            for name in workloads
            for fs in feature_sets
        ]
    else:
        cells = [
            Cell(
                key=(name, fs),
                fn=_feature_cell,
                kwargs=dict(
                    workload=name,
                    feature_set=fs,
                    config=config,
                    n_requests=n_requests,
                    seed=seed,
                    warmup_fraction=warmup_fraction,
                ),
            )
            for name in workloads
            for fs in feature_sets
        ]
    collected: Dict[str, Dict[str, object]] = {name: {} for name in workloads}
    for (name, fs), latency in iter_many(cells, max_workers=max_workers, store=store):
        if on_cell is not None:
            on_cell((name, fs), latency)
        collected[name][fs] = latency
    # Completion order may interleave; re-key in grid order.
    return {
        name: {fs: collected[name][fs] for fs in feature_sets}
        for name in workloads
    }


def buffer_size_sweep(
    sizes: Sequence[int],
    workload: str = "rsrch_0",
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
    max_workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    n_seeds: Optional[int] = None,
    on_cell: Optional[Callable] = None,
    store=None,
    resume: bool = False,
) -> Dict[int, object]:
    """Fig. 8: normalised latency vs experience-buffer capacity."""
    seed_axis = _seed_axis(seeds, n_seeds, seed)
    store = _campaign_store(store, resume)
    if seed_axis is not None:
        from .campaign import seeded_buffer_size_cell

        cells = [
            Cell(
                key=size,
                fn=seeded_buffer_size_cell,
                kwargs=dict(
                    size=size,
                    workload=workload,
                    config=config,
                    n_requests=n_requests,
                    seeds=seed_axis,
                    warmup_fraction=warmup_fraction,
                ),
            )
            for size in sizes
        ]
        return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)
    cells = [
        Cell(
            key=size,
            fn=_buffer_size_cell,
            kwargs=dict(
                size=size,
                workload=workload,
                config=config,
                n_requests=n_requests,
                seed=seed,
                warmup_fraction=warmup_fraction,
            ),
        )
        for size in sizes
    ]
    return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)


def tri_hybrid_comparison(
    workloads: Sequence[str],
    config: str = "H&M&L",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
    max_workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    n_seeds: Optional[int] = None,
    on_cell: Optional[Callable] = None,
    store=None,
    resume: bool = False,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Fig. 16: heuristic tri-hybrid vs 3-action Sibyl."""
    seed_axis = _seed_axis(seeds, n_seeds, seed)
    store = _campaign_store(store, resume)
    if seed_axis is not None:
        from .campaign import seeded_tri_hybrid_cell

        cells = [
            Cell(
                key=name,
                fn=seeded_tri_hybrid_cell,
                kwargs=dict(
                    workload=name,
                    config=config,
                    n_requests=n_requests,
                    seeds=seed_axis,
                    warmup_fraction=warmup_fraction,
                ),
            )
            for name in workloads
        ]
        return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)
    cells = [
        Cell(
            key=name,
            fn=_tri_hybrid_cell,
            kwargs=dict(
                workload=name,
                config=config,
                n_requests=n_requests,
                seed=seed,
                warmup_fraction=warmup_fraction,
            ),
        )
        for name in workloads
    ]
    return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)


def mixed_workload_comparison(
    mixes: Sequence[str],
    config: str = "H&M",
    n_requests_per_component: int = 8_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
    max_workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    n_seeds: Optional[int] = None,
    on_cell: Optional[Callable] = None,
    store=None,
    resume: bool = False,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Fig. 12: Sibyl_Def vs Sibyl_Opt vs baselines on Table 5 mixes."""
    seed_axis = _seed_axis(seeds, n_seeds, seed)
    store = _campaign_store(store, resume)
    if seed_axis is not None:
        from .campaign import seeded_mixed_cell

        cells = [
            Cell(
                key=mix,
                fn=seeded_mixed_cell,
                kwargs=dict(
                    mix=mix,
                    config=config,
                    n_requests_per_component=n_requests_per_component,
                    seeds=seed_axis,
                    warmup_fraction=warmup_fraction,
                ),
            )
            for mix in mixes
        ]
        return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)
    cells = [
        Cell(
            key=mix,
            fn=_mixed_cell,
            kwargs=dict(
                mix=mix,
                config=config,
                n_requests_per_component=n_requests_per_component,
                seed=seed,
                warmup_fraction=warmup_fraction,
            ),
        )
        for mix in mixes
    ]
    return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)


def unseen_workload_comparison(
    workloads: Sequence[str],
    config: str = "H&M",
    n_requests: int = 20_000,
    seed: int = 0,
    warmup_fraction: float = DEFAULT_WARMUP,
    max_workers: Optional[int] = None,
    seeds: Optional[Sequence[int]] = None,
    n_seeds: Optional[int] = None,
    on_cell: Optional[Callable] = None,
    store=None,
    resume: bool = False,
) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Fig. 11: generalisation to FileBench workloads never tuned on."""
    seed_axis = _seed_axis(seeds, n_seeds, seed)
    store = _campaign_store(store, resume)
    if seed_axis is not None:
        from .campaign import seeded_unseen_cell

        cells = [
            Cell(
                key=name,
                fn=seeded_unseen_cell,
                kwargs=dict(
                    workload=name,
                    config=config,
                    n_requests=n_requests,
                    seeds=seed_axis,
                    warmup_fraction=warmup_fraction,
                ),
            )
            for name in workloads
        ]
        return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)
    cells = [
        Cell(
            key=name,
            fn=_unseen_cell,
            kwargs=dict(
                workload=name,
                config=config,
                n_requests=n_requests,
                seed=seed,
                warmup_fraction=warmup_fraction,
            ),
        )
        for name in workloads
    ]
    return run_grid(cells, max_workers=max_workers, on_cell=on_cell, store=store)
