"""Multi-seed campaign engine: confidence bands riding the lane stack.

The paper's figures are single-seed point estimates; a production-scale
reproduction should quantify run-to-run variance.  This module turns
any sweep of :mod:`repro.sim.experiment` into an N-seed **campaign**:
every grid cell runs once per seed, and the per-seed metric values
collapse into a :class:`SeededResult` carrying mean, standard
deviation, min/max, and a bootstrap 95% confidence interval.

The seed axis costs barely more than a single seed because it rides
the engines PR 1–3 built:

* **Across processes** — the (cell × seed) grid fans out through
  :func:`repro.sim.parallel.run_many`; each parallel task carries one
  grid cell *with its whole seed axis inside*.
* **Within a process** — a cell's seed replicas are packed into the
  multi-lane engine (:func:`repro.sim.lanes.run_lanes`) **as extra
  lanes**: all seeds of all RL policies in the cell advance in
  lockstep, sharing one fused network forward per tick (and fused
  training events), exactly as PR 2/3's lanes do.  4 seeds ≈ one
  marginally wider batch, not 4× the work.

The hard guarantee is inherited from the lane engine and asserted by
``tests/sim/test_campaign.py``: each seed's trajectory in a campaign is
**bit-identical** to the corresponding serial single-seed run — a
campaign changes how much you know about variance, never the numbers
themselves.  Single-seed sweep calls (no ``seeds=``/``n_seeds=``) do
not go through this module at all and keep their historical output.

Layering: this module builds *on* :mod:`repro.sim.experiment` (lineup
builders, trace resolution, the Oracle row) — experiment's sweeps
import it lazily when a seed axis is requested.

Durability: a seeded sweep invoked with ``store=``/``resume=`` caches
at **cell granularity** — one blob per grid cell, holding that cell's
whole aggregated seed axis (the seed tuple is part of the fingerprint,
so changing the axis re-simulates).  :class:`SeededResult` bands
round-trip the store losslessly (:mod:`repro.store.serialize` rebuilds
real instances), which is why a warm campaign's tables and JSON
exports are byte-identical to a cold run's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..core.agent import SibylAgent
from ..core.hyperparams import SIBYL_DEFAULT
from ..traces.mixer import make_mixed_trace
from .experiment import (
    DEFAULT_WARMUP,
    _capacity_lineup,
    _compare_lineup,
    _mixed_lineup,
    _resolve_trace,
    _tri_hybrid_lineup,
    _unseen_lineup,
    oracle_row,
    run_oracle_best,
)
from .lanes import LaneSpec, run_lanes
from .runner import normalized_row, reference_row, run_reference

__all__ = [
    "SeededResult",
    "resolve_seeds",
    "bootstrap_ci",
    "aggregate_seeds",
    "run_seeded_normalized",
    "compare_cell_seeds",
    "seeded_compare_cell",
    "seeded_capacity_cell",
    "seeded_hyperparameter_cell",
    "seeded_feature_cell",
    "seeded_buffer_size_cell",
    "seeded_tri_hybrid_cell",
    "seeded_mixed_cell",
    "seeded_unseen_cell",
]

#: Bootstrap resamples behind every 95% confidence interval.  Fixed (and
#: drawn from a fixed-seed generator) so a campaign's bands are exactly
#: reproducible run to run.
BOOTSTRAP_RESAMPLES = 1000

#: Confidence level of the reported interval.
CONFIDENCE = 0.95


def resolve_seeds(
    seeds: Optional[Sequence[int]] = None,
    n_seeds: Optional[int] = None,
    base_seed: int = 0,
) -> Tuple[int, ...]:
    """Normalise a sweep's seed-axis arguments into a seed tuple.

    Exactly one of ``seeds`` (explicit list) and ``n_seeds`` (the seeds
    ``base_seed .. base_seed + n_seeds - 1``) must be given.  Seeds
    must be non-empty and unique — a duplicated seed would silently
    double-weight one replicate in every aggregate.
    """
    if (seeds is None) == (n_seeds is None):
        raise ValueError("pass exactly one of seeds= and n_seeds=")
    if seeds is None:
        n = int(n_seeds)  # type: ignore[arg-type]
        if n < 1:
            raise ValueError(f"n_seeds must be >= 1, got {n_seeds!r}")
        return tuple(int(base_seed) + i for i in range(n))
    axis = tuple(int(s) for s in seeds)
    if not axis:
        raise ValueError("seeds must be non-empty")
    if len(set(axis)) != len(axis):
        raise ValueError(f"seeds must be unique, got {axis}")
    return axis


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = CONFIDENCE,
    n_resamples: int = BOOTSTRAP_RESAMPLES,
    rng_seed: int = 0,
) -> Tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean.

    Resamples ``values`` with replacement ``n_resamples`` times and
    returns the ``(1-confidence)/2`` and ``1-(1-confidence)/2``
    quantiles of the resampled means.  With a single value the interval
    degenerates to that value.  Deterministic: the resampling generator
    is seeded by ``rng_seed``, never by global state.
    """
    data = np.asarray(list(values), dtype=float)
    n = data.size
    if n == 0:
        raise ValueError("bootstrap_ci of empty sequence")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n == 1:
        return float(data[0]), float(data[0])
    rng = np.random.default_rng(rng_seed)
    indices = rng.integers(0, n, size=(int(n_resamples), n))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(means, [alpha, 1.0 - alpha])
    return float(lo), float(hi)


@dataclass(frozen=True)
class SeededResult:
    """One metric aggregated across a campaign's seed axis.

    Carries the raw per-seed ``values`` (aligned with ``seeds`` when
    known) plus the summary statistics every figure band needs: mean,
    sample standard deviation (ddof=1; 0.0 for a single seed), min/max,
    and a bootstrap 95% confidence interval ``[ci_lo, ci_hi]`` for the
    mean.  Renders as ``mean ±half-width`` in report tables
    (:func:`repro.sim.report.format_band`) and exports losslessly via
    :func:`repro.sim.report.to_jsonable`.
    """

    values: Tuple[float, ...]
    mean: float
    std: float
    min: float
    max: float
    ci_lo: float
    ci_hi: float
    seeds: Optional[Tuple[int, ...]] = None

    @classmethod
    def from_values(
        cls,
        values: Sequence[float],
        seeds: Optional[Sequence[int]] = None,
        confidence: float = CONFIDENCE,
        n_resamples: int = BOOTSTRAP_RESAMPLES,
    ) -> "SeededResult":
        """Aggregate per-seed metric values into a banded statistic."""
        data = tuple(float(v) for v in values)
        if not data:
            raise ValueError("SeededResult of empty values")
        if seeds is not None and len(seeds) != len(data):
            raise ValueError(
                f"{len(seeds)} seeds for {len(data)} values"
            )
        arr = np.asarray(data)
        ci_lo, ci_hi = bootstrap_ci(
            data, confidence=confidence, n_resamples=n_resamples
        )
        return cls(
            values=data,
            mean=float(arr.mean()),
            std=float(arr.std(ddof=1)) if len(data) > 1 else 0.0,
            min=float(arr.min()),
            max=float(arr.max()),
            ci_lo=ci_lo,
            ci_hi=ci_hi,
            seeds=tuple(int(s) for s in seeds) if seeds is not None else None,
        )


def aggregate_seeds(per_seed: Sequence, seeds: Optional[Sequence[int]] = None):
    """Collapse per-seed sweep outputs into one banded structure.

    ``per_seed`` holds one result per seed, all with the same shape
    (arbitrarily nested dicts of metrics, or bare numbers).  The
    returned structure mirrors that shape with every numeric leaf
    replaced by a :class:`SeededResult` over the seed axis; non-numeric
    leaves (names, labels) keep the first seed's value.
    """
    per_seed = list(per_seed)
    if not per_seed:
        raise ValueError("aggregate_seeds of empty per-seed results")
    first = per_seed[0]
    if isinstance(first, Mapping):
        return {
            key: aggregate_seeds([entry[key] for entry in per_seed], seeds)
            for key in first
        }
    if isinstance(first, (int, float, np.integer, np.floating)) and not isinstance(
        first, bool
    ):
        return SeededResult.from_values(per_seed, seeds=seeds)
    return first


# --------------------------------------------------------------------------
# The lane-packing core: one run_lanes call for a whole seed axis.
# --------------------------------------------------------------------------

def run_seeded_normalized(
    seeds: Sequence[int],
    traces: Sequence,
    lineups: Sequence[Sequence],
    config: str = "H&M",
    capacity_fractions: Optional[Sequence[float]] = None,
    max_requests: Optional[int] = None,
    warmup_fraction: float = 0.0,
    with_oracle: bool = False,
    align_window: Optional[int] = None,
    stats: Optional[Dict[str, int]] = None,
    backend: Optional[str] = None,
) -> List[Dict[str, Dict[str, float]]]:
    """Run one cell's whole seed axis through a single lane-engine call.

    ``traces[i]`` and ``lineups[i]`` belong to ``seeds[i]``; every
    (seed, policy) pair becomes one lane of one
    :func:`repro.sim.lanes.run_lanes` call, so kernel-eligible lanes
    divert to the SoA engines and the rest share fused lockstep
    inference forwards and fused training events.  Returns one
    :func:`repro.sim.runner.run_normalized`-shaped dict per seed —
    bit-identical to running that seed's lineup alone, because lane
    results never depend on co-lanes.  ``with_oracle`` adds each seed's
    best-of-horizons Oracle entry exactly as the single-seed sweep
    cells do.  ``stats`` is forwarded to ``run_lanes`` for engine
    counters (see there) and ``backend`` overrides the engine choice —
    pin ``backend="off"`` to observe lockstep fusion across the seed
    axis itself.
    """
    seeds = list(seeds)
    traces = list(traces)
    lineups = [list(lineup) for lineup in lineups]
    if not (len(seeds) == len(traces) == len(lineups)):
        raise ValueError(
            f"seed axis misaligned: {len(seeds)} seeds, "
            f"{len(traces)} traces, {len(lineups)} lineups"
        )
    # A one-shot iterator can feed at most one lane; materialise it once
    # (mirrors run_normalized's guard).
    traces = [
        trace
        if isinstance(trace, (list, tuple))
        or (hasattr(trace, "__len__") and hasattr(trace, "__iter__"))
        else list(trace)
        for trace in traces
    ]
    references = [
        run_reference(
            trace,
            config=config,
            max_requests=max_requests,
            warmup_fraction=warmup_fraction,
        )
        for trace in traces
    ]
    specs = [
        LaneSpec(
            policy=policy,
            trace=trace,
            config=config,
            capacity_fractions=capacity_fractions,
            max_requests=max_requests,
            warmup_fraction=warmup_fraction,
        )
        for trace, lineup in zip(traces, lineups)
        for policy in lineup
    ]
    results = run_lanes(
        specs, align_window=align_window, stats=stats, backend=backend
    )
    out: List[Dict[str, Dict[str, float]]] = []
    cursor = 0
    for trace, lineup, reference in zip(traces, lineups, references):
        row: Dict[str, Dict[str, float]] = {
            "Fast-Only": reference_row(reference)
        }
        for _ in lineup:
            result = results[cursor]
            cursor += 1
            row[result.policy] = normalized_row(result, reference)
        if with_oracle:
            oracle = run_oracle_best(
                trace, config, capacity_fractions, warmup_fraction
            )
            row["Oracle"] = oracle_row(oracle, row["Fast-Only"])
        out.append(row)
    return out


# --------------------------------------------------------------------------
# Seeded grid cells.  Module-level (picklable) mirrors of experiment.py's
# single-seed cells: same trace resolution, same lineup builders, same
# metric projections — run once per seed with the seed axis in lanes.
# --------------------------------------------------------------------------

def compare_cell_seeds(
    workload: str,
    config: str,
    n_requests: int,
    seeds: Sequence[int],
    warmup_fraction: float = DEFAULT_WARMUP,
    stats: Optional[Dict[str, int]] = None,
) -> List[Dict[str, Dict[str, float]]]:
    """Per-seed (pre-aggregation) results of one comparison cell.

    Element ``i`` is exactly what the single-seed comparison cell
    returns for ``seed=seeds[i]`` — the bit-identity contract tests
    pin this with float equality.
    """
    return run_seeded_normalized(
        seeds,
        [_resolve_trace(workload, n_requests, s) for s in seeds],
        [_compare_lineup(s) for s in seeds],
        config=config,
        warmup_fraction=warmup_fraction,
        with_oracle=True,
        stats=stats,
    )


def seeded_compare_cell(
    workload: str,
    config: str,
    n_requests: int,
    seeds: Sequence[int],
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, SeededResult]]:
    """One comparison cell with confidence bands over the seed axis."""
    return aggregate_seeds(
        compare_cell_seeds(
            workload, config, n_requests, seeds, warmup_fraction
        ),
        seeds=seeds,
    )


def seeded_capacity_cell(
    workload: str,
    frac: float,
    config: str,
    n_requests: int,
    seeds: Sequence[int],
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, SeededResult]]:
    """One capacity-sweep point with confidence bands over seeds."""
    per_seed = run_seeded_normalized(
        seeds,
        [_resolve_trace(workload, n_requests, s) for s in seeds],
        [_capacity_lineup(s) for s in seeds],
        config=config,
        capacity_fractions=(frac,),
        warmup_fraction=warmup_fraction,
        with_oracle=True,
    )
    return aggregate_seeds(per_seed, seeds=seeds)


def seeded_hyperparameter_cell(
    parameter: str,
    value,
    workload: str,
    config: str,
    n_requests: int,
    seeds: Sequence[int],
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, SeededResult]:
    """One hyper-parameter point: Sibyl's banded normalised metrics."""
    hp = SIBYL_DEFAULT.replace(**{parameter: value})
    per_seed = run_seeded_normalized(
        seeds,
        [_resolve_trace(workload, n_requests, s) for s in seeds],
        [[SibylAgent(hyperparams=hp, seed=s)] for s in seeds],
        config=config,
        warmup_fraction=warmup_fraction,
    )
    return aggregate_seeds([entry["Sibyl"] for entry in per_seed], seeds=seeds)


def seeded_feature_cell(
    workload: str,
    feature_set: str,
    config: str,
    n_requests: int,
    seeds: Sequence[int],
    warmup_fraction: float = DEFAULT_WARMUP,
) -> SeededResult:
    """One feature-ablation point: banded normalised latency."""

    def agent(seed: int) -> SibylAgent:
        a = SibylAgent(feature_set=feature_set, seed=seed)
        a.name = f"Sibyl[{feature_set}]"
        return a

    name = f"Sibyl[{feature_set}]"
    per_seed = run_seeded_normalized(
        seeds,
        [_resolve_trace(workload, n_requests, s) for s in seeds],
        [[agent(s)] for s in seeds],
        config=config,
        warmup_fraction=warmup_fraction,
    )
    return aggregate_seeds(
        [entry[name]["latency"] for entry in per_seed], seeds=seeds
    )


def seeded_buffer_size_cell(
    size: int,
    workload: str,
    config: str,
    n_requests: int,
    seeds: Sequence[int],
    warmup_fraction: float = DEFAULT_WARMUP,
) -> SeededResult:
    """One buffer-size point: banded normalised latency."""
    hp = SIBYL_DEFAULT.replace(
        buffer_capacity=size,
        batch_size=min(SIBYL_DEFAULT.batch_size, max(1, size)),
    )
    per_seed = run_seeded_normalized(
        seeds,
        [_resolve_trace(workload, n_requests, s) for s in seeds],
        [[SibylAgent(hyperparams=hp, seed=s)] for s in seeds],
        config=config,
        warmup_fraction=warmup_fraction,
    )
    return aggregate_seeds(
        [entry["Sibyl"]["latency"] for entry in per_seed], seeds=seeds
    )


def seeded_tri_hybrid_cell(
    workload: str,
    config: str,
    n_requests: int,
    seeds: Sequence[int],
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, SeededResult]]:
    """One tri-hybrid cell with confidence bands over seeds."""
    per_seed = run_seeded_normalized(
        seeds,
        [_resolve_trace(workload, n_requests, s) for s in seeds],
        [_tri_hybrid_lineup(s) for s in seeds],
        config=config,
        warmup_fraction=warmup_fraction,
    )
    return aggregate_seeds(per_seed, seeds=seeds)


def seeded_mixed_cell(
    mix: str,
    config: str,
    n_requests_per_component: int,
    seeds: Sequence[int],
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, SeededResult]]:
    """One mixed-workload cell with confidence bands over seeds."""
    per_seed = run_seeded_normalized(
        seeds,
        [
            make_mixed_trace(
                mix,
                n_requests_per_component=n_requests_per_component,
                seed=s,
            )
            for s in seeds
        ],
        [_mixed_lineup(s) for s in seeds],
        config=config,
        warmup_fraction=warmup_fraction,
        with_oracle=True,
    )
    return aggregate_seeds(per_seed, seeds=seeds)


def seeded_unseen_cell(
    workload: str,
    config: str,
    n_requests: int,
    seeds: Sequence[int],
    warmup_fraction: float = DEFAULT_WARMUP,
) -> Dict[str, Dict[str, SeededResult]]:
    """One unseen-workload cell with confidence bands over seeds."""
    per_seed = run_seeded_normalized(
        seeds,
        [_resolve_trace(workload, n_requests, s) for s in seeds],
        [_unseen_lineup(s) for s in seeds],
        config=config,
        warmup_fraction=warmup_fraction,
        with_oracle=True,
    )
    return aggregate_seeds(per_seed, seeds=seeds)
