"""Windowed adaptation timelines: watch a policy learn online.

The paper argues Sibyl "continuously optimizes its data placement
policy online" (§1) and adapts across workload phases (§8.3).  This
module runs a policy while recording per-window metrics, producing the
learning-curve view used to study the adaptation transient: average
latency, fast-placement share, and eviction rate per window of
requests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..baselines.base import PlacementPolicy
from ..hss.request import Request
from ..hss.system import HybridStorageSystem
from .runner import build_hss

__all__ = ["WindowMetrics", "run_with_timeline"]


@dataclass(frozen=True)
class WindowMetrics:
    """Aggregated behaviour over one window of requests."""

    start_index: int
    n_requests: int
    avg_latency_s: float
    fast_share: float
    eviction_fraction: float

    @property
    def end_index(self) -> int:
        return self.start_index + self.n_requests


def run_with_timeline(
    policy: PlacementPolicy,
    trace: Sequence[Request],
    config: str = "H&M",
    window: int = 1000,
    capacity_fractions: Optional[Sequence[float]] = None,
    hss: Optional[HybridStorageSystem] = None,
) -> List[WindowMetrics]:
    """Run ``policy`` over ``trace`` and return per-window metrics.

    Uses the same closed-loop replay as :func:`repro.sim.run_policy`;
    the returned list has one entry per completed (possibly partial
    final) window.
    """
    trace = list(trace)
    if not trace:
        raise ValueError("empty trace")
    if window < 1:
        raise ValueError("window must be >= 1")
    if hss is None:
        unbounded = getattr(policy, "requires_unbounded_fast", False)
        hss = build_hss(
            config, trace, capacity_fractions=capacity_fractions,
            unbounded=unbounded,
        )
    policy.reset()
    policy.attach(hss)
    policy.prepare(trace)

    timeline: List[WindowMetrics] = []
    completion_s = 0.0
    latency_acc = 0.0
    fast_count = 0
    eviction_count = 0
    window_start = 0
    in_window = 0
    for i, request in enumerate(trace):
        action = policy.place(request)
        now = max(request.timestamp, completion_s)
        result = hss.serve(request, action, now=now)
        completion_s = now + result.latency_s
        policy.feedback(request, action, result)

        latency_acc += result.latency_s
        fast_count += int(action == hss.fastest)
        eviction_count += int(result.eviction_occurred)
        in_window += 1
        if in_window == window or i == len(trace) - 1:
            timeline.append(
                WindowMetrics(
                    start_index=window_start,
                    n_requests=in_window,
                    avg_latency_s=latency_acc / in_window,
                    fast_share=fast_count / in_window,
                    eviction_fraction=eviction_count / in_window,
                )
            )
            window_start = i + 1
            latency_acc = 0.0
            fast_count = 0
            eviction_count = 0
            in_window = 0
    return timeline
