"""Parallel experiment engine: fan sweep grids out across CPU cores.

Every figure in the paper is a grid of independent simulation cells —
(policy lineup × trace × HSS config × seed) — and each cell is a pure
function of its parameters: the trace generators, policy constructors,
and the replay loop are all deterministically seeded.  That makes the
sweeps embarrassingly parallel, and it makes the parallel result
**bit-identical** to the serial one: a worker process computes exactly
what the serial loop would have computed for that cell, nothing shared,
nothing reordered.

:func:`run_many` is the engine: give it a list of :class:`Cell` tasks
(a picklable module-level function plus kwargs) and it executes them
either serially or on a ``ProcessPoolExecutor``, returning results in
cell order.  ``sim.experiment``'s sweeps and the figure benchmarks are
built on it.

Worker-count policy (the ``SIBYL_PARALLEL`` environment variable,
parsed by the same :func:`repro.sim.lanes.resolve_count_env` contract
as ``SIBYL_LANES``):

* unset / ``"auto"`` — use all cores, but stay serial when the machine
  has a single core or the grid has a single cell (pool overhead would
  only slow those down);
* ``"0"`` / ``"1"`` / ``"serial"`` — force the serial path;
* any other non-negative integer — use exactly that many workers;
* garbage and negative values raise ``ValueError`` (a misconfiguration
  must never silently change the execution mode).

Cell packing (the ``SIBYL_LANES`` environment variable, or the
``lane_pack`` argument): each worker task carries that many consecutive
cells instead of one.  Packed cells run back-to-back in the same
process, so they share the per-process caches — most importantly the
Fast-Only reference memo (:func:`repro.sim.runner.run_reference`):
sweep campaigns whose points share a reference cell (capacity sweeps,
hyper-parameter sweeps) then simulate it once per worker instead of
once per point — and task-dispatch overhead drops by the pack factor.
Packing never changes results, only scheduling granularity.

Durable campaigns (``store=``): every entry point accepts a
:class:`repro.store.CampaignStore` (or a path to one).  Each cell is
then content-fingerprinted before dispatch; cells already stored are
served from disk — **zero simulation ticks** — and stream through the
same delivery path as fresh results, while missing cells execute
normally and persist the moment they finish (atomic write, crash-safe).
A campaign journal records the grid before dispatch, so a sweep killed
mid-grid resumes by computing only its missing cells.  Because stored
results round-trip losslessly, a warm or resumed campaign is
bit-identical to a cold one; the store only changes how much work a
rerun repeats.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..obs.metrics import active_registry
from ..obs.tracer import span
from .lanes import resolve_count_env, resolve_lanes

__all__ = ["Cell", "run_many", "iter_many", "run_grid", "resolve_workers"]

#: Environment knob controlling parallel fan-out (see module docstring).
PARALLEL_ENV = "SIBYL_PARALLEL"


@dataclass(frozen=True)
class Cell:
    """One independent unit of a sweep grid.

    ``fn`` must be a module-level (picklable) callable; ``kwargs`` are
    its keyword arguments.  ``key`` identifies the cell in the merged
    output grid — sweeps use e.g. ``("rsrch_0", 0.10)`` for a
    (workload, capacity-fraction) point.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(**self.kwargs)


def _run_cell(cell: Cell) -> Any:
    return cell.run()


def _run_cell_pack(cells: Sequence[Cell]) -> List[Any]:
    return [cell.run() for cell in cells]


def resolve_workers(
    n_cells: int, max_workers: Optional[int] = None
) -> int:
    """Number of pool workers to use; ``0`` means "run serially"."""
    if n_cells <= 1:
        return 0
    if max_workers is None:
        max_workers = resolve_count_env(
            PARALLEL_ENV, os.cpu_count() or 1, aliases={"serial": 0}
        )
    if max_workers <= 1:
        return 0
    return min(max_workers, n_cells)


def run_many(
    cells: Sequence[Cell],
    max_workers: Optional[int] = None,
    lane_pack: Optional[int] = None,
    store=None,
) -> List[Tuple[Hashable, Any]]:
    """Execute ``cells`` and return ``[(key, result), ...]`` in cell order.

    With more than one worker available the cells run on a process
    pool; otherwise they run inline.  Each cell is self-contained and
    deterministically seeded by its kwargs, so the two paths produce
    identical results — parallelism only changes wall-clock time.

    ``lane_pack`` (default: the ``SIBYL_LANES`` environment variable,
    else 1) groups that many consecutive cells into each worker task;
    see the module docstring for why packing helps campaigns.

    ``store`` (a :class:`repro.store.CampaignStore` or a path) serves
    already-stored cells from disk and persists the rest — results are
    identical either way, only the amount of recomputation changes.
    """
    cells = list(cells)
    if store is not None:
        collected = {
            id(cell): result
            for cell, result in _iter_with_store(
                cells, store, max_workers=max_workers, lane_pack=lane_pack
            )
        }
        return [(cell.key, collected[id(cell)]) for cell in cells]
    workers = resolve_workers(len(cells), max_workers)
    if workers == 0:
        return [(cell.key, cell.run()) for cell in cells]
    pack = resolve_lanes(1) if lane_pack is None else max(1, int(lane_pack))
    if pack <= 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(_run_cell, cells))
        return [(cell.key, result) for cell, result in zip(cells, results)]
    chunks = [cells[i:i + pack] for i in range(0, len(cells), pack)]
    workers = min(workers, len(chunks))
    if workers <= 1:
        results = [result for chunk in chunks for result in _run_cell_pack(chunk)]
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            packed = list(pool.map(_run_cell_pack, chunks))
        results = [result for chunk in packed for result in chunk]
    return [(cell.key, result) for cell, result in zip(cells, results)]


def _execute_iter(
    cells: Sequence[Cell],
    max_workers: Optional[int] = None,
    lane_pack: Optional[int] = None,
) -> Iterator[Tuple[Cell, Any]]:
    """Execute cells, yielding ``(cell, result)`` in completion order."""
    cells = list(cells)
    workers = resolve_workers(len(cells), max_workers)
    if workers == 0:
        for cell in cells:
            with span("campaign.cell", cat="campaign", key=str(cell.key)):
                result = cell.run()
            yield cell, result
        return
    pack = resolve_lanes(1) if lane_pack is None else max(1, int(lane_pack))
    chunks = [cells[i:i + max(1, pack)] for i in range(0, len(cells), max(1, pack))]
    workers = min(workers, len(chunks))
    if workers <= 1:
        for chunk in chunks:
            with span("campaign.pack", cat="campaign", cells=len(chunk)):
                results = _run_cell_pack(chunk)
            for cell, result in zip(chunk, results):
                yield cell, result
        return
    with ProcessPoolExecutor(max_workers=workers) as pool:
        with span(
            "campaign.dispatch", cat="campaign",
            chunks=len(chunks), workers=workers,
        ):
            futures = {
                pool.submit(_run_cell_pack, chunk): chunk for chunk in chunks
            }
        for future in as_completed(futures):
            chunk = futures[future]
            with span("campaign.collect", cat="campaign", cells=len(chunk)):
                results = future.result()
            for cell, result in zip(chunk, results):
                yield cell, result


def _iter_with_store(
    cells: Sequence[Cell],
    store,
    max_workers: Optional[int] = None,
    lane_pack: Optional[int] = None,
) -> Iterator[Tuple[Cell, Any]]:
    """The durable-campaign path of :func:`iter_many`.

    Fingerprints the grid, journals its membership, serves stored cells
    first (delivery only — a hit computes nothing), then executes the
    missing cells and persists each one the moment it completes.  The
    journal is marked complete only after every cell landed, so an
    interrupted campaign is visible as such and resumes by recomputing
    exactly its missing cells.
    """
    from ..store import MISS, resolve_store  # lazy: repro imports us at init

    store = resolve_store(store)
    cells = list(cells)
    registry = active_registry()
    with span("store.fingerprint", cat="store", cells=len(cells)):
        fingerprints = [
            store.fingerprint(cell.fn, cell.kwargs) for cell in cells
        ]
    journaled = [
        (cell.key, fp)
        for cell, fp in zip(cells, fingerprints)
        if fp is not None
    ]
    journal = store.begin_campaign(
        [key for key, _ in journaled], [fp for _, fp in journaled]
    )
    pending: List[Cell] = []
    fingerprint_of: Dict[int, Optional[str]] = {}
    for cell, fp in zip(cells, fingerprints):
        if fp is None:
            hit = MISS
        else:
            with span("store.get", cat="store", key=str(cell.key)):
                hit = store.get(fp)
        if hit is MISS:
            pending.append(cell)
            fingerprint_of[id(cell)] = fp
            if registry is not None:
                registry.counter("store_misses").inc()
        else:
            if registry is not None:
                registry.counter("store_hits").inc()
            yield cell, hit
    for cell, result in _execute_iter(
        pending, max_workers=max_workers, lane_pack=lane_pack
    ):
        fp = fingerprint_of[id(cell)]
        if fp is not None:
            with span("store.put", cat="store", key=str(cell.key)):
                store.put(fp, result, fn=cell.fn, key=cell.key)
            if registry is not None:
                registry.counter("store_puts").inc()
        yield cell, result
    store.finish_campaign(journal)


def iter_many(
    cells: Sequence[Cell],
    max_workers: Optional[int] = None,
    lane_pack: Optional[int] = None,
    store=None,
) -> Iterator[Tuple[Hashable, Any]]:
    """Stream ``(key, result)`` pairs as cells complete.

    The streaming counterpart of :func:`run_many`: results arrive in
    **completion order** (cell order on the serial path), so a caller
    can fold each cell into a report the moment it finishes instead of
    materialising the full grid first — the difference between staring
    at a silent campaign for minutes and watching its rows land.  Every
    cell computes exactly what :func:`run_many` would compute for it;
    only the delivery order and latency change.

    ``lane_pack`` groups consecutive cells per worker task exactly as
    in :func:`run_many`; a packed chunk is delivered together (in cell
    order within the chunk) when the chunk completes.

    With a ``store`` (a :class:`repro.store.CampaignStore` or a path),
    already-stored cells are delivered first — straight from disk, zero
    simulation ticks — and the missing cells follow as they execute and
    persist; both kinds stream through this same interface, so callers
    (``on_cell`` consumers, live reports) cannot tell a warm cell from
    a fresh one.
    """
    cells = list(cells)
    if store is not None:
        for cell, result in _iter_with_store(
            cells, store, max_workers=max_workers, lane_pack=lane_pack
        ):
            yield cell.key, result
        return
    for cell, result in _execute_iter(
        cells, max_workers=max_workers, lane_pack=lane_pack
    ):
        yield cell.key, result


def run_grid(
    cells: Sequence[Cell],
    max_workers: Optional[int] = None,
    on_cell: Optional[Callable[[Hashable, Any], None]] = None,
    store=None,
) -> Dict[Hashable, Any]:
    """:func:`run_many`, merged into a dict keyed by each cell's key.

    ``on_cell(key, result)``, when given, fires once per cell **as the
    cell completes** (completion order — :func:`iter_many` underneath),
    so sweeps can stream rows into a live report; the returned dict is
    always in cell order regardless.  ``store`` makes the grid durable
    (see :func:`iter_many`); store hits fire ``on_cell`` exactly like
    fresh results.
    """
    cells = list(cells)
    results: Dict[Hashable, Any] = {}
    for key, result in iter_many(cells, max_workers=max_workers, store=store):
        if on_cell is not None:
            on_cell(key, result)
        results[key] = result
    return {cell.key: results[cell.key] for cell in cells}
