"""Parallel experiment engine: fan sweep grids out across CPU cores.

Every figure in the paper is a grid of independent simulation cells —
(policy lineup × trace × HSS config × seed) — and each cell is a pure
function of its parameters: the trace generators, policy constructors,
and the replay loop are all deterministically seeded.  That makes the
sweeps embarrassingly parallel, and it makes the parallel result
**bit-identical** to the serial one: a worker process computes exactly
what the serial loop would have computed for that cell, nothing shared,
nothing reordered.

:func:`run_many` is the engine: give it a list of :class:`Cell` tasks
(a picklable module-level function plus kwargs) and it executes them
either serially or on a ``ProcessPoolExecutor``, returning results in
cell order.  ``sim.experiment``'s sweeps and the figure benchmarks are
built on it.

Worker-count policy (the ``SIBYL_PARALLEL`` environment variable):

* unset / ``"auto"`` — use all cores, but stay serial when the machine
  has a single core or the grid has a single cell (pool overhead would
  only slow those down);
* ``"0"`` / ``"1"`` / ``"serial"`` — force the serial path;
* any other integer — use exactly that many workers.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

__all__ = ["Cell", "run_many", "run_grid", "resolve_workers"]

#: Environment knob controlling parallel fan-out (see module docstring).
PARALLEL_ENV = "SIBYL_PARALLEL"


@dataclass(frozen=True)
class Cell:
    """One independent unit of a sweep grid.

    ``fn`` must be a module-level (picklable) callable; ``kwargs`` are
    its keyword arguments.  ``key`` identifies the cell in the merged
    output grid — sweeps use e.g. ``("rsrch_0", 0.10)`` for a
    (workload, capacity-fraction) point.
    """

    key: Hashable
    fn: Callable[..., Any]
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        return self.fn(**self.kwargs)


def _run_cell(cell: Cell) -> Any:
    return cell.run()


def resolve_workers(
    n_cells: int, max_workers: Optional[int] = None
) -> int:
    """Number of pool workers to use; ``0`` means "run serially"."""
    if n_cells <= 1:
        return 0
    if max_workers is None:
        raw = os.environ.get(PARALLEL_ENV, "auto").strip().lower()
        if raw in ("auto", ""):
            max_workers = os.cpu_count() or 1
        elif raw == "serial":
            return 0
        else:
            try:
                max_workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{PARALLEL_ENV} must be 'auto', 'serial', or an "
                    f"integer, got {raw!r}"
                ) from None
    if max_workers <= 1:
        return 0
    return min(max_workers, n_cells)


def run_many(
    cells: Sequence[Cell],
    max_workers: Optional[int] = None,
) -> List[Tuple[Hashable, Any]]:
    """Execute ``cells`` and return ``[(key, result), ...]`` in cell order.

    With more than one worker available the cells run on a process
    pool; otherwise they run inline.  Each cell is self-contained and
    deterministically seeded by its kwargs, so the two paths produce
    identical results — parallelism only changes wall-clock time.
    """
    cells = list(cells)
    workers = resolve_workers(len(cells), max_workers)
    if workers == 0:
        return [(cell.key, cell.run()) for cell in cells]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(_run_cell, cells))
    return [(cell.key, result) for cell, result in zip(cells, results)]


def run_grid(
    cells: Sequence[Cell],
    max_workers: Optional[int] = None,
) -> Dict[Hashable, Any]:
    """:func:`run_many`, merged into a dict keyed by each cell's key."""
    return dict(run_many(cells, max_workers=max_workers))
