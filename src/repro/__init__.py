"""repro — a from-scratch reproduction of Sibyl (ISCA 2022).

Sibyl is an online reinforcement-learning data-placement agent for
hybrid storage systems.  This package provides the agent, the HSS
simulator it runs against, the workload/trace infrastructure, every
baseline the paper compares with, and a benchmark harness regenerating
each table and figure of the paper's evaluation.

Quickstart::

    from repro import SibylAgent, make_trace, run_policy

    trace = make_trace("rsrch_0", n_requests=20_000)
    result = run_policy(SibylAgent(), trace, config="H&M")
    print(result.avg_latency_s, result.iops)
"""

# Defined before the subpackage imports below: the durable campaign
# store folds the engine version into every cell fingerprint, and its
# modules may be imported while this package is still initialising.
__version__ = "1.0.0"

from .baselines import (
    ArchivistPolicy,
    CDEPolicy,
    FastOnlyPolicy,
    HPSPolicy,
    OraclePolicy,
    PlacementPolicy,
    RNNHSSPolicy,
    SlowOnlyPolicy,
    TriHeuristicPolicy,
    available_policies,
    make_policy,
)
from .core import (
    SIBYL_DEFAULT,
    SIBYL_OPT,
    FeatureExtractor,
    LatencyReward,
    SibylAgent,
    SibylHyperParams,
    compute_overhead,
)
from .hss import (
    HybridStorageSystem,
    OpType,
    Request,
    make_device,
    make_devices,
)
from .sim import (
    RunResult,
    build_hss,
    format_table,
    run_normalized,
    run_policy,
)
from .traces import (
    ALL_WORKLOADS,
    MSRC_WORKLOADS,
    WorkloadSpec,
    compute_stats,
    generate_trace,
    make_mixed_trace,
    make_trace,
)

__all__ = [
    "ALL_WORKLOADS",
    "ArchivistPolicy",
    "CDEPolicy",
    "FastOnlyPolicy",
    "FeatureExtractor",
    "HPSPolicy",
    "HybridStorageSystem",
    "LatencyReward",
    "MSRC_WORKLOADS",
    "OpType",
    "OraclePolicy",
    "PlacementPolicy",
    "RNNHSSPolicy",
    "Request",
    "RunResult",
    "SIBYL_DEFAULT",
    "SIBYL_OPT",
    "SibylAgent",
    "SibylHyperParams",
    "SlowOnlyPolicy",
    "TriHeuristicPolicy",
    "WorkloadSpec",
    "available_policies",
    "build_hss",
    "compute_overhead",
    "compute_stats",
    "format_table",
    "generate_trace",
    "make_device",
    "make_devices",
    "make_mixed_trace",
    "make_policy",
    "make_trace",
    "run_normalized",
    "run_policy",
    "__version__",
]
