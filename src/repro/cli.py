"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``workloads``
    List the workload catalog with Table 4 statistics.
``run``
    Run one policy over one workload and print the metrics.
``compare``
    Run the full Fig. 9 lineup over workloads and print the table.
    ``--seeds N`` runs an N-seed campaign and prints mean ±95%
    confidence bands; ``--json PATH`` exports the machine-readable grid.
    ``--store PATH`` / ``--resume`` / ``--no-store`` control the durable
    campaign store (:mod:`repro.store`): with a store, finished cells
    persist on disk and reruns/resumed campaigns recompute only what is
    missing, rendering byte-identical output.
``overhead``
    Print the §10 overhead analysis.
``export-trace``
    Generate a synthetic workload and write it as an MSRC-format CSV.
``serve``
    Run the online placement daemon (:mod:`repro.serve`): a long-lived
    TCP service speaking newline-delimited JSON, batching concurrent
    tenants' inference through one fused forward and training off the
    request path.  Blocks until a client sends ``shutdown`` (or ^C).
``lint``
    Run the Sibyl contract analyzer (:mod:`repro.analysis`) over the
    given paths: static AST checks for the determinism, hook-pair,
    fingerprint, env-knob, and fork-safety invariants.  Exit status 0
    = clean, 1 = findings, 2 = fatal error.

Fatal errors (unwritable ``--json`` target, missing lint path, bad
configuration) exit with status 2 and a one-line ``error: ...`` on
stderr — never a traceback.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .baselines import available_policies, make_policy
from .core.agent import SibylAgent
from .core.hyperparams import SIBYL_DEFAULT
from .core.overhead import compute_overhead
from .sim.experiment import compare_policies
from .sim.report import export_json, format_table
from .sim.runner import run_policy
from .traces.msrc import dump_msrc_csv
from .traces.workloads import ALL_WORKLOADS, make_trace

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sibyl (ISCA 2022) reproduction harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the workload catalog")

    run = sub.add_parser("run", help="run one policy over one workload")
    run.add_argument("--workload", default="rsrch_0",
                     choices=sorted(ALL_WORKLOADS))
    run.add_argument("--policy", default="sibyl",
                     choices=["sibyl"] + available_policies())
    run.add_argument("--config", default="H&M",
                     help="&-joined device list, e.g. H&M or H&M&L")
    run.add_argument("--requests", type=int, default=20_000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--warmup", type=float, default=0.0,
                     help="fraction of the trace excluded from metrics")

    compare = sub.add_parser(
        "compare", help="compare the full policy lineup (Fig. 9 style)"
    )
    compare.add_argument("--workloads", nargs="+", default=["rsrch_0"],
                         choices=sorted(ALL_WORKLOADS))
    compare.add_argument("--config", default="H&M")
    compare.add_argument("--requests", type=int, default=10_000)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--seeds", type=int, default=1, metavar="N",
        help="run each workload on N seeds (base --seed upward) and "
             "report mean ±95%% confidence bands instead of point "
             "estimates (the seed axis rides the multi-lane engine)",
    )
    compare.add_argument(
        "--json", metavar="PATH",
        help="also write the full (banded) result grid as JSON",
    )
    compare.add_argument(
        "--store", metavar="PATH",
        help="durable campaign store directory: finished cells persist "
             "there and already-stored cells are served from disk "
             "without re-simulation (default: the SIBYL_STORE "
             "environment variable, if set)",
    )
    compare.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted campaign: shorthand for --store "
             ".sibyl-store when no --store/SIBYL_STORE is given (a "
             "warm store always resumes; this flag just picks the "
             "default location)",
    )
    compare.add_argument(
        "--no-store", action="store_true",
        help="force an undurable run even when SIBYL_STORE is set",
    )
    compare.add_argument(
        "--trace", metavar="PATH",
        help="write campaign/store spans as Chrome-trace-event JSON "
             "(Perfetto-loadable; default: SIBYL_TRACE_PATH, if set)",
    )

    sub.add_parser("overhead", help="print the Sec. 10 overhead analysis")

    lint = sub.add_parser(
        "lint",
        help="run the Sibyl contract analyzer (static AST invariant checks)",
    )
    from .analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    serve = sub.add_parser(
        "serve", help="run the online placement daemon (NDJSON over TCP)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port; 0 binds an ephemeral port "
             "(default: SIBYL_SERVE_PORT)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help="async trainer threads (default: SIBYL_SERVE_WORKERS)",
    )
    serve.add_argument(
        "--batch", type=int, default=None,
        help="max placements fused per round (default: SIBYL_SERVE_BATCH)",
    )
    serve.add_argument(
        "--train", default=None, choices=["async", "sync", "off"],
        help="training mode (default: SIBYL_SERVE_TRAIN)",
    )
    serve.add_argument(
        "--trace", metavar="PATH",
        help="write request/round/trainer spans as Chrome-trace-event "
             "JSON (Perfetto-loadable; default: SIBYL_TRACE_PATH)",
    )

    export = sub.add_parser(
        "export-trace", help="write a synthetic workload as MSRC CSV"
    )
    export.add_argument("--workload", default="rsrch_0",
                        choices=sorted(ALL_WORKLOADS))
    export.add_argument("--requests", type=int, default=20_000)
    export.add_argument("--seed", type=int, default=0)
    export.add_argument("--output", required=True)

    return parser


def _cmd_workloads() -> int:
    rows = []
    for name, spec in sorted(ALL_WORKLOADS.items()):
        rows.append(
            {
                "workload": name,
                "source": spec.source,
                "write%": 100 * spec.write_fraction,
                "avg_size_kib": spec.avg_request_size_kib,
                "avg_access_cnt": spec.avg_access_count,
                "tuning_set": spec.tuning,
            }
        )
    print(format_table(rows, title="Workload catalog (Table 4 + unseen)",
                       precision=1))
    return 0


def _cmd_run(args) -> int:
    trace = make_trace(args.workload, n_requests=args.requests,
                       seed=args.seed)
    if args.policy == "sibyl":
        policy = SibylAgent(hyperparams=SIBYL_DEFAULT, seed=args.seed)
    else:
        policy = make_policy(args.policy)
    result = run_policy(
        policy, trace, config=args.config, warmup_fraction=args.warmup
    )
    rows = [
        {"metric": "policy", "value": result.policy},
        {"metric": "config", "value": result.config},
        {"metric": "requests measured", "value": result.n_requests},
        {"metric": "avg latency (us)",
         "value": result.avg_latency_s * 1e6},
        {"metric": "IOPS", "value": result.iops},
        {"metric": "eviction fraction", "value": result.eviction_fraction},
        {"metric": "fast preference",
         "value": result.profile.fast_preference},
    ]
    print(format_table(rows, title=f"{args.workload} on {args.config}"))
    return 0


def _resolve_cli_store(args):
    """The compare command's store, from flags and ``SIBYL_STORE``.

    Precedence: ``--no-store`` disables everything; ``--store PATH``
    wins; otherwise the ``SIBYL_STORE`` environment variable; a bare
    ``--resume`` falls back to the default ``.sibyl-store/`` directory.
    """
    from .store import DEFAULT_STORE_DIR, CampaignStore, store_from_env

    if args.no_store:
        return None
    if args.store:
        return CampaignStore(args.store)
    env_store = store_from_env()
    if env_store is not None:
        return env_store
    if args.resume:
        return CampaignStore(DEFAULT_STORE_DIR)
    return None


def _cmd_compare(args) -> int:
    n_seeds = max(1, args.seeds)
    store = _resolve_cli_store(args)
    kwargs = dict(
        config=args.config, n_requests=args.requests, seed=args.seed,
        store=store,
    )
    if n_seeds > 1:
        # Stream per-workload completions so long multi-seed campaigns
        # show progress instead of going silent until the full grid is
        # materialised.
        def on_cell(key, _result):
            print(f"[campaign] {key}: {n_seeds} seeds done",
                  file=sys.stderr, flush=True)

        kwargs.update(n_seeds=n_seeds, on_cell=on_cell)
    results = compare_policies(args.workloads, **kwargs)
    if store is not None:
        print(
            f"[store] {store.root}: {store.hits} cell(s) served from "
            f"store, {store.puts} newly stored",
            file=sys.stderr, flush=True,
        )
    policies = list(next(iter(results.values())).keys())
    rows = []
    for workload, by_policy in results.items():
        row = {"workload": workload}
        for p in policies:
            row[p] = by_policy[p]["latency"]
        rows.append(row)
    title = f"Normalized avg request latency vs Fast-Only ({args.config})"
    if n_seeds > 1:
        title += f" — mean ±95% CI over {n_seeds} seeds"
    print(format_table(rows, title=title))
    if getattr(args, "json", None):
        export_json(results, path=args.json)
        print(f"wrote JSON grid to {args.json}")
    return 0


def _cmd_overhead() -> int:
    report = compute_overhead()
    rows = [
        {"quantity": "inference neurons", "value": report.inference_neurons},
        {"quantity": "weights / inference MACs", "value": report.weights},
        {"quantity": "training MACs per step",
         "value": report.training_macs_per_step},
        {"quantity": "network storage (paper KiB)",
         "value": report.network_storage_reported_kib},
        {"quantity": "experience buffer (paper KiB)",
         "value": report.buffer_storage_reported_kib},
        {"quantity": "total (paper KiB)", "value": report.total_reported_kib},
        {"quantity": "metadata bits per page",
         "value": report.metadata_bits_per_page},
    ]
    print(format_table(rows, title="Sec. 10 overhead analysis", precision=1))
    return 0


def _cmd_export(args) -> int:
    trace = make_trace(args.workload, n_requests=args.requests,
                       seed=args.seed)
    dump_msrc_csv(trace, args.output, hostname=args.workload)
    print(f"wrote {len(trace)} requests to {args.output}")
    return 0


def _cmd_serve(args) -> int:
    from .serve.daemon import PlacementDaemon

    daemon = PlacementDaemon(
        host=args.host, port=args.port, workers=args.workers,
        batch=args.batch, train_mode=args.train,
    )
    with daemon:
        host, port = daemon.address
        print(f"serving on {host}:{port}", flush=True)
        try:
            daemon.serve_forever()
        except KeyboardInterrupt:
            pass
    return 0


def _cmd_lint(args) -> int:
    from .analysis.cli import run_lint_cli

    return run_lint_cli(args)


def _setup_tracing(args) -> None:
    """Install a span tracer from ``--trace`` or ``SIBYL_TRACE_PATH``."""
    from .obs.tracer import install_tracer, tracer_from_env

    if getattr(args, "trace", None):
        install_tracer(args.trace)
    else:
        tracer_from_env()


def _dispatch(args) -> int:
    if args.command == "workloads":
        return _cmd_workloads()
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "compare":
        return _cmd_compare(args)
    if args.command == "overhead":
        return _cmd_overhead()
    if args.command == "export-trace":
        return _cmd_export(args)
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "lint":
        return _cmd_lint(args)
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


def main(argv: Optional[List[str]] = None) -> int:
    """Parse ``argv`` and run one command.

    Expected failures — an unwritable ``--json``/``--output`` target, a
    missing lint path, an invalid knob or argument value — exit with
    status ``2`` and a single ``error: ...`` line on stderr instead of
    a traceback; genuine bugs still propagate loudly.
    """
    args = build_parser().parse_args(argv)
    from .obs.tracer import flush_tracer

    try:
        _setup_tracing(args)
        return _dispatch(args)
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        flush_tracer()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
